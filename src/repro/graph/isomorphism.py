"""Label-preserving graph and subgraph isomorphism (Definitions 4–6).

A VF2-style backtracking matcher specialised for
:class:`~repro.graph.labeled_graph.LabeledGraph`:

* :func:`find_isomorphism` / :func:`is_isomorphic` — Definition 4, a
  label-preserving bijection (both vertex and edge labels must match, and
  the edge sets must correspond exactly).
* :func:`find_subgraph_isomorphism` / :func:`is_subgraph_isomorphic` —
  Definition 5, a label-preserving *injection* from the pattern into the
  target under which every pattern edge appears in the target with the same
  label. This is the non-induced (monomorphism) flavor the paper relies on:
  the target may have extra edges between matched vertices.
* :func:`iter_subgraph_isomorphisms` — lazy enumeration of all embeddings.

The matcher orders pattern vertices connectivity-first (each vertex after
the first is adjacent to an earlier one whenever the pattern is connected),
which keeps candidate sets small, and prunes with vertex labels and degrees.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping

from repro.graph.labeled_graph import LabeledGraph

VertexId = Hashable


def _matching_order(pattern: LabeledGraph) -> list[VertexId]:
    """Order pattern vertices so each one touches the already-ordered prefix.

    Within the frontier, higher-degree vertices come first (fail-fast). Each
    connected component is started from its highest-degree vertex.
    """
    remaining = set(pattern.vertices())
    order: list[VertexId] = []
    frontier: set[VertexId] = set()
    while remaining:
        if frontier:
            nxt = max(frontier, key=lambda v: (pattern.degree(v), repr(v)))
        else:
            nxt = max(remaining, key=lambda v: (pattern.degree(v), repr(v)))
        order.append(nxt)
        remaining.discard(nxt)
        frontier.discard(nxt)
        frontier.update(n for n in pattern.neighbors(nxt) if n in remaining)
    return order


def _candidate_targets(
    pattern: LabeledGraph,
    target: LabeledGraph,
    pattern_vertex: VertexId,
    mapping: dict[VertexId, VertexId],
    used: set[VertexId],
    induced: bool,
) -> Iterator[VertexId]:
    """Yield feasible target vertices for ``pattern_vertex`` given ``mapping``."""
    wanted_label = pattern.vertex_label(pattern_vertex)
    mapped_neighbors = [n for n in pattern.neighbors(pattern_vertex) if n in mapping]
    if mapped_neighbors:
        # Candidates must be adjacent to the image of some mapped neighbor;
        # start from the smallest image neighborhood.
        anchor = min(mapped_neighbors, key=lambda n: target.degree(mapping[n]))
        pool = target.neighbors(mapping[anchor])
    else:
        pool = target.vertices()
    for candidate in pool:
        if candidate in used:
            continue
        if target.vertex_label(candidate) != wanted_label:
            continue
        if target.degree(candidate) < pattern.degree(pattern_vertex):
            continue
        feasible = True
        for neighbor in pattern.neighbors(pattern_vertex):
            if neighbor not in mapping:
                continue
            image = mapping[neighbor]
            if not target.has_edge(candidate, image):
                feasible = False
                break
            if target.edge_label(candidate, image) != pattern.edge_label(
                pattern_vertex, neighbor
            ):
                feasible = False
                break
        if feasible and induced:
            # Induced matching additionally forbids target edges between
            # images of non-adjacent pattern vertices.
            for p_vertex, t_vertex in mapping.items():
                if p_vertex in pattern.neighbors(pattern_vertex):
                    continue
                if target.has_edge(candidate, t_vertex):
                    feasible = False
                    break
        if feasible:
            yield candidate


def iter_subgraph_isomorphisms(
    pattern: LabeledGraph,
    target: LabeledGraph,
    induced: bool = False,
) -> Iterator[dict[VertexId, VertexId]]:
    """Enumerate label-preserving embeddings of ``pattern`` into ``target``.

    Each yielded mapping is a dict ``pattern vertex -> target vertex``. With
    ``induced=True`` the embedding must also *reflect* non-edges (used by the
    exact-isomorphism check).
    """
    if pattern.order > target.order or pattern.size > target.size:
        return
    order = _matching_order(pattern)
    mapping: dict[VertexId, VertexId] = {}
    used: set[VertexId] = set()

    def extend(index: int) -> Iterator[dict[VertexId, VertexId]]:
        if index == len(order):
            yield dict(mapping)
            return
        pattern_vertex = order[index]
        for candidate in _candidate_targets(
            pattern, target, pattern_vertex, mapping, used, induced
        ):
            mapping[pattern_vertex] = candidate
            used.add(candidate)
            yield from extend(index + 1)
            del mapping[pattern_vertex]
            used.discard(candidate)

    yield from extend(0)


def find_subgraph_isomorphism(
    pattern: LabeledGraph,
    target: LabeledGraph,
) -> dict[VertexId, VertexId] | None:
    """First embedding of ``pattern`` into ``target``, or ``None`` (Def. 5)."""
    for mapping in iter_subgraph_isomorphisms(pattern, target):
        return mapping
    return None


def is_subgraph_isomorphic(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    """Whether ``pattern ⊆ target`` in the sense of Definition 6."""
    return find_subgraph_isomorphism(pattern, target) is not None


def count_subgraph_isomorphisms(pattern: LabeledGraph, target: LabeledGraph) -> int:
    """Number of distinct embeddings of ``pattern`` into ``target``."""
    return sum(1 for _ in iter_subgraph_isomorphisms(pattern, target))


def find_isomorphism(
    g1: LabeledGraph,
    g2: LabeledGraph,
) -> dict[VertexId, VertexId] | None:
    """A label-preserving bijection ``V(g1) -> V(g2)``, or ``None`` (Def. 4)."""
    if g1.order != g2.order or g1.size != g2.size:
        return None
    if g1.vertex_label_multiset() != g2.vertex_label_multiset():
        return None
    if g1.edge_label_multiset() != g2.edge_label_multiset():
        return None
    # With equal orders and sizes, an induced embedding is a bijection whose
    # inverse also preserves edges: exactly Definition 4.
    for mapping in iter_subgraph_isomorphisms(g1, g2, induced=True):
        return mapping
    return None


def is_isomorphic(g1: LabeledGraph, g2: LabeledGraph) -> bool:
    """Whether ``g1 ≈ g2`` (Definition 4)."""
    return find_isomorphism(g1, g2) is not None


def verify_embedding(
    pattern: LabeledGraph,
    target: LabeledGraph,
    mapping: Mapping[VertexId, VertexId],
) -> bool:
    """Check that ``mapping`` is a valid label-preserving embedding.

    Useful as an independent validation step in tests and in the MCS solver.
    """
    if len(mapping) != pattern.order:
        return False
    if len(set(mapping.values())) != len(mapping):
        return False
    for vertex, image in mapping.items():
        if not target.has_vertex(image):
            return False
        if pattern.vertex_label(vertex) != target.vertex_label(image):
            return False
    for u, v, label in pattern.edges():
        if not target.has_edge(mapping[u], mapping[v]):
            return False
        if target.edge_label(mapping[u], mapping[v]) != label:
            return False
    return True
