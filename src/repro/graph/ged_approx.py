"""Approximate graph edit distance: bounds, bipartite assignment, beam search.

Three estimators complement the exact solver of :mod:`repro.graph.ged`:

* :func:`ged_lower_bound` — a cheap admissible bound from vertex- and
  edge-label multisets (never exceeds the exact distance). The database
  index uses it for pruning.
* :func:`bipartite_ged` — the Riesen–Bunke assignment heuristic: vertices
  of both graphs are matched by solving one linear assignment problem over
  a cost matrix that prices each substitution together with an estimate of
  its incident-edge costs; the induced edit cost of that full mapping is a
  valid upper bound.
* :func:`beam_ged` — a beam-limited variant of the exact depth-first
  search; wider beams tighten the bound at higher cost.

All estimators return a :class:`GedEstimate` whose ``distance`` comes from
:func:`induced_edit_cost`, so every reported value is the true cost of a
concrete vertex mapping (hence always an upper bound for the heuristics).
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from dataclasses import dataclass
from collections.abc import Hashable

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.operations import CostModel, UNIFORM_COSTS, UniformCostModel

VertexId = Hashable

#: Mapping image used for deleted vertices (mirrors repro.graph.ged).
DELETED = None


@dataclass
class GedEstimate:
    """An edit-distance estimate realised by a concrete vertex mapping."""

    distance: float
    mapping: dict[VertexId, VertexId | None]


def induced_edit_cost(
    g1: LabeledGraph,
    g2: LabeledGraph,
    mapping: dict[VertexId, VertexId | None],
    costs: CostModel = UNIFORM_COSTS,
) -> float:
    """Exact edit cost of transforming ``g1`` into ``g2`` along ``mapping``.

    ``mapping`` must cover every ``g1`` vertex (image ``None`` = deletion);
    ``g2`` vertices that are not images are insertions. The value is an
    upper bound on the true edit distance for any mapping, and equals it
    for an optimal one.
    """
    images = {w for w in mapping.values() if w is not DELETED}
    cost = 0.0
    for u in g1.vertices():
        w = mapping[u]
        if w is DELETED:
            cost += costs.vertex_deletion(g1.vertex_label(u))
        else:
            cost += costs.vertex_substitution(g1.vertex_label(u), g2.vertex_label(w))
    for w in g2.vertices():
        if w not in images:
            cost += costs.vertex_insertion(g2.vertex_label(w))
    for u, v, label in g1.edges():
        u_img, v_img = mapping[u], mapping[v]
        if u_img is not DELETED and v_img is not DELETED and g2.has_edge(u_img, v_img):
            cost += costs.edge_substitution(label, g2.edge_label(u_img, v_img))
        else:
            cost += costs.edge_deletion(label)
    reverse = {w: u for u, w in mapping.items() if w is not DELETED}
    for a, b, label in g2.edges():
        u, v = reverse.get(a), reverse.get(b)
        if u is None or v is None or not g1.has_edge(u, v):
            cost += costs.edge_insertion(label)
    return cost


def _multiset_bound(
    counter1: Counter, counter2: Counter, indel: float, mismatch: float
) -> float:
    n1, n2 = sum(counter1.values()), sum(counter2.values())
    overlap = sum((counter1 & counter2).values())
    return abs(n1 - n2) * indel + (min(n1, n2) - overlap) * min(mismatch, 2.0 * indel)


def ged_lower_bound(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel = UNIFORM_COSTS,
) -> float:
    """Admissible lower bound on ``DistEd(g1, g2)``.

    Sums independent assignment bounds over the vertex-label and edge-label
    multisets. For non-uniform cost models the bound degrades to 0.
    """
    if not isinstance(costs, UniformCostModel):
        return 0.0
    vertex_part = _multiset_bound(
        g1.vertex_label_multiset(),
        g2.vertex_label_multiset(),
        costs.indel_cost,
        costs.mismatch_cost,
    )
    edge_part = _multiset_bound(
        g1.edge_label_multiset(),
        g2.edge_label_multiset(),
        costs.indel_cost,
        costs.mismatch_cost,
    )
    return vertex_part + edge_part


def _neighborhood_counter(graph: LabeledGraph, vertex: VertexId) -> Counter:
    return Counter(
        graph.edge_label(vertex, neighbor) for neighbor in graph.neighbors(vertex)
    )


def bipartite_ged(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel = UNIFORM_COSTS,
) -> GedEstimate:
    """Riesen–Bunke bipartite upper bound on the edit distance.

    Builds the classic ``(n1+n2) x (n1+n2)`` cost matrix (substitutions in
    the top-left block, deletions/insertions on diagonals) where each entry
    adds a multiset estimate of incident-edge costs, solves one linear
    assignment problem, and prices the resulting complete mapping exactly.
    """
    import numpy
    from scipy.optimize import linear_sum_assignment

    v1 = list(g1.vertices())
    v2 = list(g2.vertices())
    n1, n2 = len(v1), len(v2)
    size = n1 + n2
    if size == 0:
        return GedEstimate(0.0, {})
    big = 1e9
    matrix = numpy.full((size, size), big)
    if isinstance(costs, UniformCostModel):
        indel, mismatch = costs.indel_cost, costs.mismatch_cost
    else:  # conservative generic estimates for the edge term
        indel, mismatch = 1.0, 1.0
    nbrs1 = {u: _neighborhood_counter(g1, u) for u in v1}
    nbrs2 = {w: _neighborhood_counter(g2, w) for w in v2}
    for i, u in enumerate(v1):
        for j, w in enumerate(v2):
            edge_term = _multiset_bound(nbrs1[u], nbrs2[w], indel, mismatch) / 2.0
            matrix[i, j] = (
                costs.vertex_substitution(g1.vertex_label(u), g2.vertex_label(w))
                + edge_term
            )
    for i, u in enumerate(v1):
        matrix[i, n2 + i] = costs.vertex_deletion(g1.vertex_label(u)) + sum(
            costs.edge_deletion(label) for label in nbrs1[u].elements()
        ) / 2.0
    for j, w in enumerate(v2):
        matrix[n1 + j, j] = costs.vertex_insertion(g2.vertex_label(w)) + sum(
            costs.edge_insertion(label) for label in nbrs2[w].elements()
        ) / 2.0
    matrix[n1:, n2:] = 0.0
    rows, cols = linear_sum_assignment(matrix)
    mapping: dict[VertexId, VertexId | None] = {}
    for i, j in zip(rows, cols):
        if i < n1:
            mapping[v1[i]] = v2[j] if j < n2 else DELETED
    return GedEstimate(induced_edit_cost(g1, g2, mapping, costs), mapping)


def beam_ged(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel = UNIFORM_COSTS,
    beam_width: int = 16,
) -> GedEstimate:
    """Beam-limited assignment search (upper bound).

    Explores the same tree as the exact solver but keeps only the
    ``beam_width`` cheapest partial assignments per level. ``beam_width``
    of 1 is a greedy matcher; very large widths converge to the exact
    distance.
    """
    if beam_width < 1:
        raise ValueError("beam_width must be at least 1")
    order = sorted(g1.vertices(), key=lambda v: (-g1.degree(v), repr(v)))
    v2 = list(g2.vertices())
    counter = itertools.count()  # tie-breaker: heapq must never compare dicts
    beam: list[tuple[float, int, dict[VertexId, VertexId | None]]] = [(0.0, next(counter), {})]

    def partial_cost(mapping: dict, u: VertexId, w: VertexId | None) -> float:
        if w is DELETED:
            cost = costs.vertex_deletion(g1.vertex_label(u))
            for prev in mapping:
                if g1.has_edge(u, prev):
                    cost += costs.edge_deletion(g1.edge_label(u, prev))
            return cost
        cost = costs.vertex_substitution(g1.vertex_label(u), g2.vertex_label(w))
        for prev, image in mapping.items():
            edge1 = g1.has_edge(u, prev)
            edge2 = image is not DELETED and g2.has_edge(w, image)
            if edge1 and edge2:
                cost += costs.edge_substitution(
                    g1.edge_label(u, prev), g2.edge_label(w, image)
                )
            elif edge1:
                cost += costs.edge_deletion(g1.edge_label(u, prev))
            elif edge2:
                cost += costs.edge_insertion(g2.edge_label(w, image))
        return cost

    for u in order:
        next_beam: list[tuple[float, int, dict]] = []
        for cost_so_far, _, mapping in beam:
            used = {w for w in mapping.values() if w is not DELETED}
            options: list[VertexId | None] = [w for w in v2 if w not in used]
            options.append(DELETED)
            for w in options:
                new_cost = cost_so_far + partial_cost(mapping, u, w)
                entry = (new_cost, next(counter), {**mapping, u: w})
                if len(next_beam) < beam_width:
                    heapq.heappush(next_beam, _negate(entry))
                elif new_cost < -next_beam[0][0]:
                    heapq.heapreplace(next_beam, _negate(entry))
        beam = sorted(_negate(entry) for entry in next_beam)
    best_mapping = min(
        beam,
        key=lambda item: induced_edit_cost(g1, g2, item[2], costs),
    )[2]
    return GedEstimate(induced_edit_cost(g1, g2, best_mapping, costs), best_mapping)


def _negate(entry: tuple[float, int, dict]) -> tuple[float, int, dict]:
    """Flip the cost sign so heapq's min-heap acts as a bounded max-heap."""
    cost, tie, mapping = entry
    return (-cost, tie, mapping)
