"""Graph edit operations and edit paths (Section IV-A of the paper).

The paper's edit-distance model uses six elementary operations: insertion,
deletion and relabeling of a vertex or an edge. Each operation knows how to
apply itself to a :class:`~repro.graph.labeled_graph.LabeledGraph` (producing
a new graph) and how to price itself under a :class:`CostModel`.

The :class:`UniformCostModel` implements the paper's assumption: "the
distance between two vertices/edges is 1 if they have different labels;
otherwise it is 0", and insertions/deletions cost 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable, Sequence

from repro.errors import InvalidEditOperationError
from repro.graph.labeled_graph import DEFAULT_EDGE_LABEL, LabeledGraph

Label = Hashable
VertexId = Hashable


class CostModel:
    """Prices elementary edit operations.

    Subclasses may override any method; costs must be non-negative for the
    exact GED solver's lower bounds to remain admissible.
    """

    def vertex_substitution(self, label_from: Label, label_to: Label) -> float:
        """Cost of turning a vertex labeled ``label_from`` into ``label_to``."""
        raise NotImplementedError

    def vertex_deletion(self, label: Label) -> float:
        """Cost of deleting a vertex labeled ``label``."""
        raise NotImplementedError

    def vertex_insertion(self, label: Label) -> float:
        """Cost of inserting a vertex labeled ``label``."""
        raise NotImplementedError

    def edge_substitution(self, label_from: Label, label_to: Label) -> float:
        """Cost of turning an edge labeled ``label_from`` into ``label_to``."""
        raise NotImplementedError

    def edge_deletion(self, label: Label) -> float:
        """Cost of deleting an edge labeled ``label``."""
        raise NotImplementedError

    def edge_insertion(self, label: Label) -> float:
        """Cost of inserting an edge labeled ``label``."""
        raise NotImplementedError


class UniformCostModel(CostModel):
    """The paper's uniform cost model.

    Substitution costs ``mismatch_cost`` when labels differ and 0 otherwise;
    insertions and deletions cost ``indel_cost``. Defaults reproduce the
    paper (both equal to 1).
    """

    def __init__(self, indel_cost: float = 1.0, mismatch_cost: float = 1.0) -> None:
        if indel_cost < 0 or mismatch_cost < 0:
            raise ValueError("costs must be non-negative")
        self.indel_cost = float(indel_cost)
        self.mismatch_cost = float(mismatch_cost)

    def vertex_substitution(self, label_from: Label, label_to: Label) -> float:
        return 0.0 if label_from == label_to else self.mismatch_cost

    def vertex_deletion(self, label: Label) -> float:
        return self.indel_cost

    def vertex_insertion(self, label: Label) -> float:
        return self.indel_cost

    def edge_substitution(self, label_from: Label, label_to: Label) -> float:
        return 0.0 if label_from == label_to else self.mismatch_cost

    def edge_deletion(self, label: Label) -> float:
        return self.indel_cost

    def edge_insertion(self, label: Label) -> float:
        return self.indel_cost


#: Shared default instance of the paper's cost model.
UNIFORM_COSTS = UniformCostModel()


@dataclass(frozen=True)
class EditOperation:
    """Base class of the six elementary operations."""

    def apply(self, graph: LabeledGraph) -> LabeledGraph:
        """Return a new graph with this operation applied."""
        clone = graph.copy()
        self._apply_in_place(clone)
        return clone

    def _apply_in_place(self, graph: LabeledGraph) -> None:
        raise NotImplementedError

    def cost(self, costs: CostModel = UNIFORM_COSTS) -> float:
        """Price of this operation under ``costs``."""
        raise NotImplementedError


@dataclass(frozen=True)
class VertexInsertion(EditOperation):
    """Insert an isolated vertex."""

    vertex: VertexId
    label: Label

    def _apply_in_place(self, graph: LabeledGraph) -> None:
        if graph.has_vertex(self.vertex):
            raise InvalidEditOperationError(f"vertex {self.vertex!r} already exists")
        graph.add_vertex(self.vertex, self.label)

    def cost(self, costs: CostModel = UNIFORM_COSTS) -> float:
        return costs.vertex_insertion(self.label)


@dataclass(frozen=True)
class VertexDeletion(EditOperation):
    """Delete an isolated vertex (incident edges must be deleted first)."""

    vertex: VertexId

    def _apply_in_place(self, graph: LabeledGraph) -> None:
        if not graph.has_vertex(self.vertex):
            raise InvalidEditOperationError(f"vertex {self.vertex!r} does not exist")
        if graph.degree(self.vertex) != 0:
            raise InvalidEditOperationError(
                f"vertex {self.vertex!r} still has incident edges"
            )
        graph.remove_vertex(self.vertex)

    def cost(self, costs: CostModel = UNIFORM_COSTS) -> float:
        return costs.vertex_deletion(None)


@dataclass(frozen=True)
class VertexRelabeling(EditOperation):
    """Replace a vertex label (a substitution with a different label)."""

    vertex: VertexId
    old_label: Label
    new_label: Label

    def _apply_in_place(self, graph: LabeledGraph) -> None:
        if not graph.has_vertex(self.vertex):
            raise InvalidEditOperationError(f"vertex {self.vertex!r} does not exist")
        if graph.vertex_label(self.vertex) != self.old_label:
            raise InvalidEditOperationError(
                f"vertex {self.vertex!r} is not labeled {self.old_label!r}"
            )
        graph.relabel_vertex(self.vertex, self.new_label)

    def cost(self, costs: CostModel = UNIFORM_COSTS) -> float:
        return costs.vertex_substitution(self.old_label, self.new_label)


@dataclass(frozen=True)
class EdgeInsertion(EditOperation):
    """Insert an edge between two existing vertices."""

    u: VertexId
    v: VertexId
    label: Label = DEFAULT_EDGE_LABEL

    def _apply_in_place(self, graph: LabeledGraph) -> None:
        if not graph.has_vertex(self.u) or not graph.has_vertex(self.v):
            raise InvalidEditOperationError("both endpoints must exist")
        if graph.has_edge(self.u, self.v):
            raise InvalidEditOperationError(
                f"edge ({self.u!r}, {self.v!r}) already exists"
            )
        graph.add_edge(self.u, self.v, self.label)

    def cost(self, costs: CostModel = UNIFORM_COSTS) -> float:
        return costs.edge_insertion(self.label)


@dataclass(frozen=True)
class EdgeDeletion(EditOperation):
    """Delete an existing edge."""

    u: VertexId
    v: VertexId

    def _apply_in_place(self, graph: LabeledGraph) -> None:
        if not graph.has_edge(self.u, self.v):
            raise InvalidEditOperationError(
                f"edge ({self.u!r}, {self.v!r}) does not exist"
            )
        graph.remove_edge(self.u, self.v)

    def cost(self, costs: CostModel = UNIFORM_COSTS) -> float:
        return costs.edge_deletion(None)


@dataclass(frozen=True)
class EdgeRelabeling(EditOperation):
    """Replace an edge label."""

    u: VertexId
    v: VertexId
    old_label: Label
    new_label: Label

    def _apply_in_place(self, graph: LabeledGraph) -> None:
        if not graph.has_edge(self.u, self.v):
            raise InvalidEditOperationError(
                f"edge ({self.u!r}, {self.v!r}) does not exist"
            )
        if graph.edge_label(self.u, self.v) != self.old_label:
            raise InvalidEditOperationError(
                f"edge ({self.u!r}, {self.v!r}) is not labeled {self.old_label!r}"
            )
        graph.relabel_edge(self.u, self.v, self.new_label)

    def cost(self, costs: CostModel = UNIFORM_COSTS) -> float:
        return costs.edge_substitution(self.old_label, self.new_label)


class EditPath:
    """A sequence of edit operations, with the paper's additive cost ``c(s)``."""

    def __init__(self, operations: Iterable[EditOperation] = ()) -> None:
        self._operations: list[EditOperation] = list(operations)

    @property
    def operations(self) -> Sequence[EditOperation]:
        """The operations, in application order."""
        return tuple(self._operations)

    def append(self, operation: EditOperation) -> None:
        """Add one more operation at the end of the path."""
        self._operations.append(operation)

    def cost(self, costs: CostModel = UNIFORM_COSTS) -> float:
        """Total cost ``c(s) = sum(c(e_op_i))`` (paper, Section IV-A)."""
        return sum(operation.cost(costs) for operation in self._operations)

    def apply(self, graph: LabeledGraph) -> LabeledGraph:
        """Apply all operations in order, returning the transformed graph."""
        current = graph.copy()
        for operation in self._operations:
            operation._apply_in_place(current)
        return current

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self):
        return iter(self._operations)

    def __repr__(self) -> str:
        return f"<EditPath: {len(self._operations)} operations>"
