"""Graph generators: structured families, random graphs, and mutations.

Everything takes an explicit :class:`random.Random` (or a seed) so that
datasets, tests and benchmarks are reproducible. The mutation helpers
implement the workload model used throughout the evaluation benches: a
query graph is answered by a database of graphs derived from it (and from
distractors) through controlled numbers of random edit operations — the
standard way similarity-search papers build ground-truth-ish workloads.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence

from repro.errors import GraphError
from repro.graph.labeled_graph import DEFAULT_EDGE_LABEL, LabeledGraph

Label = Hashable

#: Default label alphabets, sized like small chemical alphabets.
DEFAULT_VERTEX_LABELS: tuple[str, ...] = ("A", "B", "C", "D")
DEFAULT_EDGE_LABELS: tuple[str, ...] = (DEFAULT_EDGE_LABEL,)


def _rng(seed: int | random.Random | None) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ----------------------------------------------------------------------
# Structured families
# ----------------------------------------------------------------------
def path_graph(labels: Sequence[Label], edge_label: Label = DEFAULT_EDGE_LABEL,
               name: str | None = None) -> LabeledGraph:
    """A path whose i-th vertex (id ``i``) carries ``labels[i]``."""
    graph = LabeledGraph(name=name)
    for i, label in enumerate(labels):
        graph.add_vertex(i, label)
    for i in range(len(labels) - 1):
        graph.add_edge(i, i + 1, edge_label)
    return graph


def cycle_graph(labels: Sequence[Label], edge_label: Label = DEFAULT_EDGE_LABEL,
                name: str | None = None) -> LabeledGraph:
    """A cycle over ``len(labels)`` (at least 3) labeled vertices."""
    if len(labels) < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    graph = path_graph(labels, edge_label, name)
    graph.add_edge(len(labels) - 1, 0, edge_label)
    return graph


def star_graph(center_label: Label, leaf_labels: Sequence[Label],
               edge_label: Label = DEFAULT_EDGE_LABEL,
               name: str | None = None) -> LabeledGraph:
    """A star: vertex 0 is the center, leaves are 1..n."""
    graph = LabeledGraph(name=name)
    graph.add_vertex(0, center_label)
    for i, label in enumerate(leaf_labels, start=1):
        graph.add_vertex(i, label)
        graph.add_edge(0, i, edge_label)
    return graph


def grid_graph(rows: int, columns: int, label: Label = "A",
               edge_label: Label = DEFAULT_EDGE_LABEL,
               name: str | None = None) -> LabeledGraph:
    """A rows x columns grid with uniform labels (ids are ``(r, c)``)."""
    if rows < 1 or columns < 1:
        raise GraphError("grid dimensions must be positive")
    graph = LabeledGraph(name=name)
    for r in range(rows):
        for c in range(columns):
            graph.add_vertex((r, c), label)
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                graph.add_edge((r, c), (r, c + 1), edge_label)
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c), edge_label)
    return graph


# ----------------------------------------------------------------------
# Random graphs
# ----------------------------------------------------------------------
def random_labeled_graph(
    n_vertices: int,
    n_edges: int,
    vertex_labels: Sequence[Label] = DEFAULT_VERTEX_LABELS,
    edge_labels: Sequence[Label] = DEFAULT_EDGE_LABELS,
    seed: int | random.Random | None = None,
    connected: bool = True,
    name: str | None = None,
) -> LabeledGraph:
    """A uniformly random simple labeled graph.

    With ``connected=True`` a random spanning tree is laid down first
    (requiring ``n_edges >= n_vertices - 1``), then the remaining edges are
    sampled uniformly from the missing pairs.
    """
    rng = _rng(seed)
    max_edges = n_vertices * (n_vertices - 1) // 2
    if n_edges > max_edges:
        raise GraphError(f"{n_edges} edges do not fit in {n_vertices} vertices")
    if connected and n_vertices > 0 and n_edges < n_vertices - 1:
        raise GraphError("a connected graph needs at least n-1 edges")
    graph = LabeledGraph(name=name)
    for v in range(n_vertices):
        graph.add_vertex(v, rng.choice(list(vertex_labels)))
    chosen: set[tuple[int, int]] = set()
    if connected and n_vertices > 1:
        # Random spanning tree: attach each new vertex to a random earlier one.
        vertices = list(range(n_vertices))
        rng.shuffle(vertices)
        for i in range(1, n_vertices):
            u, v = vertices[i], rng.choice(vertices[:i])
            chosen.add((min(u, v), max(u, v)))
    candidates = [
        (u, v)
        for u in range(n_vertices)
        for v in range(u + 1, n_vertices)
        if (u, v) not in chosen
    ]
    rng.shuffle(candidates)
    for u, v in candidates[: n_edges - len(chosen)]:
        chosen.add((u, v))
    for u, v in sorted(chosen):
        graph.add_edge(u, v, rng.choice(list(edge_labels)))
    return graph


# ----------------------------------------------------------------------
# Mutations (workload model)
# ----------------------------------------------------------------------
def mutate(
    graph: LabeledGraph,
    n_operations: int,
    vertex_labels: Sequence[Label] = DEFAULT_VERTEX_LABELS,
    edge_labels: Sequence[Label] = DEFAULT_EDGE_LABELS,
    seed: int | random.Random | None = None,
    keep_connected: bool = True,
    name: str | None = None,
) -> LabeledGraph:
    """Apply ``n_operations`` random edit operations to a copy of ``graph``.

    Operations are drawn from: edge insertion, edge deletion, vertex
    relabeling, edge relabeling, and leaf-vertex insertion (a new vertex
    plus an attaching edge, counted as two operations like in the edit
    model). The edit distance to the original is *at most* the number of
    operations applied; it can be smaller when operations cancel out.
    """
    rng = _rng(seed)
    mutant = graph.copy(name=name or (f"{graph.name}~" if graph.name else None))
    budget = n_operations
    fresh = 0
    attempts_left = 200 * max(n_operations, 1)
    while budget > 0:
        attempts_left -= 1
        if attempts_left < 0:
            raise GraphError(
                "mutate() could not make progress; the graph/label alphabet "
                "leaves no applicable operations"
            )
        moves = ["relabel_vertex", "relabel_edge", "add_edge", "remove_edge"]
        if budget >= 2:
            moves.append("grow_leaf")
        move = rng.choice(moves)
        if move == "relabel_vertex" and mutant.order > 0:
            vertex = rng.choice(mutant.vertices())
            new_label = rng.choice(list(vertex_labels))
            if new_label != mutant.vertex_label(vertex):
                mutant.relabel_vertex(vertex, new_label)
                budget -= 1
        elif move == "relabel_edge" and mutant.size > 0 and len(edge_labels) > 1:
            u, v, label = rng.choice(list(mutant.edges()))
            new_label = rng.choice(list(edge_labels))
            if new_label != label:
                mutant.relabel_edge(u, v, new_label)
                budget -= 1
        elif move == "add_edge":
            vertices = mutant.vertices()
            missing = [
                (u, v)
                for i, u in enumerate(vertices)
                for v in vertices[i + 1 :]
                if not mutant.has_edge(u, v)
            ]
            if missing:
                u, v = rng.choice(missing)
                mutant.add_edge(u, v, rng.choice(list(edge_labels)))
                budget -= 1
        elif move == "remove_edge" and mutant.size > 0:
            u, v, label = rng.choice(list(mutant.edges()))
            mutant.remove_edge(u, v)
            if keep_connected and not mutant.is_connected():
                mutant.add_edge(u, v, label)  # undo and retry another move
            else:
                budget -= 1
        elif move == "grow_leaf" and mutant.order > 0:
            new_id = f"m{fresh}"
            while mutant.has_vertex(new_id):
                fresh += 1
                new_id = f"m{fresh}"
            anchor = rng.choice(mutant.vertices())
            mutant.add_vertex(new_id, rng.choice(list(vertex_labels)))
            mutant.add_edge(new_id, anchor, rng.choice(list(edge_labels)))
            fresh += 1
            budget -= 2
    return mutant


def mutation_database(
    query: LabeledGraph,
    n_graphs: int,
    radius: tuple[int, int] = (1, 6),
    vertex_labels: Sequence[Label] = DEFAULT_VERTEX_LABELS,
    edge_labels: Sequence[Label] = DEFAULT_EDGE_LABELS,
    seed: int | random.Random | None = None,
) -> list[LabeledGraph]:
    """A workload database of mutants of ``query`` at varied edit radii."""
    rng = _rng(seed)
    low, high = radius
    if low < 1 or high < low:
        raise GraphError("radius must satisfy 1 <= low <= high")
    graphs = []
    for index in range(n_graphs):
        distance = rng.randint(low, high)
        graphs.append(
            mutate(
                query,
                distance,
                vertex_labels=vertex_labels,
                edge_labels=edge_labels,
                seed=rng,
                name=f"mutant-{index}",
            )
        )
    return graphs
