"""Undirected labeled graphs (Definition 3 of the paper).

A graph is a 4-tuple ``(V, E, L, l)``: a set of vertices, a set of edges, a
set of labels, and a labeling function mapping every vertex and edge to a
label. Following the paper:

* graphs are **undirected** and **simple** (no self loops, no parallel
  edges);
* different vertices may carry the same label;
* the **size** of a graph is its number of edges, ``|g| = |E(g)|``.

Vertex identifiers can be any hashable value; labels can be any hashable
value (strings in all the paper's examples). The class keeps an adjacency
dictionary ``vertex -> {neighbor: edge_label}`` plus a vertex-label
dictionary, which makes every local operation O(1) expected time.
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Hashable, Iterable, Iterator, Mapping

from repro.errors import (
    DuplicateEdgeError,
    DuplicateVertexError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)

#: Label used for edges when the caller does not provide one. The paper's
#: Fig. 3 graphs only label vertices; a uniform edge label reproduces that.
DEFAULT_EDGE_LABEL = "-"

VertexId = Hashable
Label = Hashable


def _sort_key(value: Hashable) -> tuple[str, str]:
    """Deterministic ordering key for arbitrary hashable ids.

    Sorting by ``(type name, repr)`` keeps mixed id types (ints and strings)
    comparable, so edge iteration order is stable across runs.
    """
    return (type(value).__name__, repr(value))


def edge_key(u: VertexId, v: VertexId) -> tuple[VertexId, VertexId]:
    """Canonical (order-independent) key for the undirected edge ``{u, v}``."""
    if _sort_key(u) <= _sort_key(v):
        return (u, v)
    return (v, u)


class LabeledGraph:
    """A simple undirected graph with labeled vertices and labeled edges.

    Parameters
    ----------
    name:
        Optional human-readable name (used by datasets and reports).

    Examples
    --------
    >>> g = LabeledGraph(name="toy")
    >>> g.add_vertex(1, "A")
    >>> g.add_vertex(2, "B")
    >>> g.add_edge(1, 2, "x")
    >>> g.size
    1
    >>> g.vertex_label(1)
    'A'
    """

    __slots__ = (
        "name",
        "_vertex_labels",
        "_adjacency",
        "_edge_count",
        "_mutations",
        "__weakref__",
    )

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._vertex_labels: dict[VertexId, Label] = {}
        self._adjacency: dict[VertexId, dict[VertexId, Label]] = {}
        self._edge_count = 0
        self._mutations = 0

    @property
    def mutation_count(self) -> int:
        """Counter bumped by every structural/label mutation.

        Lets caches memoize derived values (e.g. the canonical hash) per
        ``(object, mutation_count)`` soundly: in-place mutation changes
        the key, so a stale value can never be served for the same
        object — see :meth:`repro.db.cache.PairCache.query_hash`.
        """
        return self._mutations

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple],
        vertex_labels: Mapping[VertexId, Label] | None = None,
        name: str | None = None,
    ) -> "LabeledGraph":
        """Build a graph from an edge list.

        Each edge is either ``(u, v)`` (labeled :data:`DEFAULT_EDGE_LABEL`) or
        ``(u, v, label)``. Vertices referenced by edges are created on the
        fly; their labels come from ``vertex_labels`` and default to the
        vertex id itself, which is convenient for graphs whose vertices are
        identified by their label (as in the paper's figures).
        """
        graph = cls(name=name)
        labels = dict(vertex_labels) if vertex_labels is not None else {}
        for vertex, label in labels.items():
            graph.add_vertex(vertex, label)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                label = DEFAULT_EDGE_LABEL
            elif len(edge) == 3:
                u, v, label = edge
            else:
                raise ValueError(f"edge tuples must have 2 or 3 items, got {edge!r}")
            for endpoint in (u, v):
                if not graph.has_vertex(endpoint):
                    graph.add_vertex(endpoint, labels.get(endpoint, endpoint))
            graph.add_edge(u, v, label)
        return graph

    def copy(self, name: str | None = None) -> "LabeledGraph":
        """Return an independent deep copy of this graph."""
        clone = LabeledGraph(name=self.name if name is None else name)
        clone._vertex_labels = dict(self._vertex_labels)
        clone._adjacency = {v: dict(nbrs) for v, nbrs in self._adjacency.items()}
        clone._edge_count = self._edge_count
        return clone

    # ------------------------------------------------------------------
    # Vertex operations
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: VertexId, label: Label) -> None:
        """Insert an isolated vertex carrying ``label``."""
        if vertex in self._vertex_labels:
            raise DuplicateVertexError(vertex)
        self._vertex_labels[vertex] = label
        self._adjacency[vertex] = {}
        self._mutations += 1

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove ``vertex`` together with all its incident edges."""
        if vertex not in self._vertex_labels:
            raise VertexNotFoundError(vertex)
        neighbors = list(self._adjacency[vertex])
        for neighbor in neighbors:
            del self._adjacency[neighbor][vertex]
        self._edge_count -= len(neighbors)
        del self._adjacency[vertex]
        del self._vertex_labels[vertex]
        self._mutations += 1

    def relabel_vertex(self, vertex: VertexId, label: Label) -> None:
        """Replace the label of ``vertex``."""
        if vertex not in self._vertex_labels:
            raise VertexNotFoundError(vertex)
        self._vertex_labels[vertex] = label
        self._mutations += 1

    def has_vertex(self, vertex: VertexId) -> bool:
        """Whether ``vertex`` is in the graph."""
        return vertex in self._vertex_labels

    def vertex_label(self, vertex: VertexId) -> Label:
        """The label carried by ``vertex``."""
        try:
            return self._vertex_labels[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertices(self) -> list[VertexId]:
        """All vertex ids, in insertion order."""
        return list(self._vertex_labels)

    def degree(self, vertex: VertexId) -> int:
        """Number of edges incident to ``vertex``."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        return len(self._adjacency[vertex])

    def neighbors(self, vertex: VertexId) -> list[VertexId]:
        """Vertices adjacent to ``vertex``."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        return list(self._adjacency[vertex])

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u: VertexId, v: VertexId, label: Label = DEFAULT_EDGE_LABEL) -> None:
        """Insert the undirected edge ``{u, v}`` carrying ``label``."""
        if u == v:
            raise SelfLoopError(u)
        for endpoint in (u, v):
            if endpoint not in self._vertex_labels:
                raise VertexNotFoundError(endpoint)
        if v in self._adjacency[u]:
            raise DuplicateEdgeError(u, v)
        self._adjacency[u][v] = label
        self._adjacency[v][u] = label
        self._edge_count += 1
        self._mutations += 1

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the undirected edge ``{u, v}``."""
        if u not in self._adjacency or v not in self._adjacency[u]:
            raise EdgeNotFoundError(u, v)
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._edge_count -= 1
        self._mutations += 1

    def relabel_edge(self, u: VertexId, v: VertexId, label: Label) -> None:
        """Replace the label of edge ``{u, v}``."""
        if u not in self._adjacency or v not in self._adjacency[u]:
            raise EdgeNotFoundError(u, v)
        self._adjacency[u][v] = label
        self._adjacency[v][u] = label
        self._mutations += 1

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Whether the undirected edge ``{u, v}`` is in the graph."""
        return u in self._adjacency and v in self._adjacency[u]

    def edge_label(self, u: VertexId, v: VertexId) -> Label:
        """The label carried by edge ``{u, v}``."""
        if u not in self._adjacency or v not in self._adjacency[u]:
            raise EdgeNotFoundError(u, v)
        return self._adjacency[u][v]

    def edges(self) -> Iterator[tuple[VertexId, VertexId, Label]]:
        """Iterate over edges as ``(u, v, label)`` with a canonical endpoint order."""
        seen: set[tuple[VertexId, VertexId]] = set()
        for u, nbrs in self._adjacency.items():
            for v, label in nbrs.items():
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield (key[0], key[1], label)

    def edge_set(self) -> set[tuple[VertexId, VertexId]]:
        """The set of edges as canonical ``(u, v)`` pairs (labels dropped)."""
        return {edge_key(u, v) for u, v, _ in self.edges()}

    # ------------------------------------------------------------------
    # Global properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of vertices, ``|V(g)|``."""
        return len(self._vertex_labels)

    @property
    def size(self) -> int:
        """Number of edges — the paper's ``|g|`` (Definition 3)."""
        return self._edge_count

    def vertex_label_multiset(self) -> Counter:
        """Multiset of vertex labels (used by GED lower bounds)."""
        return Counter(self._vertex_labels.values())

    def edge_label_multiset(self) -> Counter:
        """Multiset of edge labels (used by GED lower bounds)."""
        return Counter(label for _, _, label in self.edges())

    def label_set(self) -> set[Label]:
        """The set ``L`` of all labels appearing on vertices or edges."""
        labels: set[Label] = set(self._vertex_labels.values())
        labels.update(label for _, _, label in self.edges())
        return labels

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set[VertexId]]:
        """Vertex sets of the connected components (BFS)."""
        remaining = set(self._vertex_labels)
        components: list[set[VertexId]] = []
        while remaining:
            start = next(iter(remaining))
            component = {start}
            queue = deque([start])
            while queue:
                current = queue.popleft()
                for neighbor in self._adjacency[current]:
                    if neighbor not in component:
                        component.add(neighbor)
                        queue.append(neighbor)
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """Whether the graph has at most one connected component.

        The empty graph is considered connected.
        """
        return len(self.connected_components()) <= 1

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[VertexId]) -> "LabeledGraph":
        """Vertex-induced subgraph on ``vertices`` (keeps all labels)."""
        keep = set(vertices)
        missing = keep - set(self._vertex_labels)
        if missing:
            raise VertexNotFoundError(next(iter(missing)))
        sub = LabeledGraph(name=self.name)
        for vertex in keep:
            sub.add_vertex(vertex, self._vertex_labels[vertex])
        for u, v, label in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, label)
        return sub

    def edge_subgraph(self, edges: Iterable[tuple[VertexId, VertexId]]) -> "LabeledGraph":
        """Edge-induced subgraph: the given edges plus their endpoints."""
        sub = LabeledGraph(name=self.name)
        for u, v in edges:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            for endpoint in (u, v):
                if not sub.has_vertex(endpoint):
                    sub.add_vertex(endpoint, self._vertex_labels[endpoint])
            sub.add_edge(u, v, self._adjacency[u][v])
        return sub

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._vertex_labels

    def __len__(self) -> int:
        return self._edge_count

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._vertex_labels)

    def __eq__(self, other: object) -> bool:
        """Structural identity: same vertex ids, labels and labeled edges.

        This is *not* isomorphism — use :mod:`repro.graph.isomorphism` for
        label-preserving isomorphism tests.
        """
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        if self._vertex_labels != other._vertex_labels:
            return False
        return dict(self._iter_edge_items()) == dict(other._iter_edge_items())

    def __hash__(self) -> int:  # pragma: no cover - defensive
        raise TypeError("LabeledGraph is mutable and unhashable; use canonical_form()")

    def _iter_edge_items(self) -> Iterator[tuple[tuple[VertexId, VertexId], Label]]:
        for u, v, label in self.edges():
            yield (edge_key(u, v), label)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<LabeledGraph{label}: {self.order} vertices, {self.size} edges>"
