"""Isomorphism-invariant canonical forms and hashing.

Used to deduplicate graphs (database ingestion, the reconstruction search)
and to memoise pairwise computations. The canonical form is produced by
iterated Weisfeiler–Leman color refinement over vertex and incident-edge
labels, followed by an exact backtracking canonicalisation *within* color
classes for small graphs, so that:

* isomorphic graphs always share a canonical form (and hash);
* non-isomorphic graphs virtually never collide (and a collision is
  harmless for correctness wherever the form is used as a cache key
  together with an exact isomorphism check).
"""

from __future__ import annotations

import hashlib
from collections.abc import Hashable

from repro.graph.labeled_graph import LabeledGraph

VertexId = Hashable


def wl_colors(graph: LabeledGraph, rounds: int | None = None) -> dict[VertexId, str]:
    """Stable Weisfeiler–Leman colors for every vertex.

    Each round hashes a vertex's current color with the sorted multiset of
    ``(edge label, neighbor color)`` pairs. ``rounds`` defaults to the
    vertex count, by which point the partition is guaranteed stable.
    """
    colors = {
        v: _digest(repr(graph.vertex_label(v))) for v in graph.vertices()
    }
    total_rounds = graph.order if rounds is None else rounds
    for _ in range(total_rounds):
        new_colors = {}
        for v in graph.vertices():
            signature = sorted(
                (repr(graph.edge_label(v, n)), colors[n]) for n in graph.neighbors(v)
            )
            new_colors[v] = _digest(colors[v] + repr(signature))
        if new_colors == colors:
            break
        colors = new_colors
    return colors


def canonical_form(graph: LabeledGraph) -> str:
    """A string invariant under isomorphism, canonical for small graphs.

    Vertices are ordered by (WL color, then exhaustively over ties via a
    lexicographically-minimal adjacency encoding), and the labeled edge
    list under that order is serialised.
    """
    colors = wl_colors(graph)
    groups: dict[str, list[VertexId]] = {}
    for v, color in colors.items():
        groups.setdefault(color, []).append(v)
    ordered_colors = sorted(groups)
    best: str | None = None

    # Backtrack over orderings that respect color classes, keeping the
    # lexicographically smallest encoding. Color classes are almost always
    # singletons after refinement, so this is cheap in practice.
    def encode(order: list[VertexId]) -> str:
        index = {v: i for i, v in enumerate(order)}
        vertex_part = ",".join(repr(graph.vertex_label(v)) for v in order)
        edges = sorted(
            (min(index[u], index[v]), max(index[u], index[v]), repr(label))
            for u, v, label in graph.edges()
        )
        return vertex_part + "|" + repr(edges)

    def orderings(class_index: int, prefix: list[VertexId]) -> None:
        nonlocal best
        if class_index == len(ordered_colors):
            encoding = encode(prefix)
            if best is None or encoding < best:
                best = encoding
            return
        members = groups[ordered_colors[class_index]]
        for permutation in _permutations_capped(members):
            orderings(class_index + 1, prefix + list(permutation))

    orderings(0, [])
    assert best is not None
    return best


def canonical_hash(graph: LabeledGraph) -> str:
    """Short hex digest of :func:`canonical_form` (cache / index key)."""
    return _digest(canonical_form(graph))


_PERMUTATION_CAP = 6  # 6! = 720 orderings per color class at most


def _permutations_capped(members: list[VertexId]):
    """All permutations for small classes; one stable order for huge ones.

    Falling back to a single deterministic order sacrifices canonicity (two
    isomorphic graphs with enormous automorphism classes may get different
    forms) but never correctness of the users of this module, which all pair
    the hash with an exact isomorphism check.
    """
    import itertools

    if len(members) <= _PERMUTATION_CAP:
        yield from itertools.permutations(sorted(members, key=repr))
    else:
        yield tuple(sorted(members, key=repr))


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
