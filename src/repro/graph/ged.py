"""Exact graph edit distance (Definition 8).

``DistEd(g1, g2)`` is the minimum total cost over all edit-operation
sequences transforming ``g1`` into ``g2``. The solver below is a
depth-first branch and bound over vertex assignments (DF-GED):

* ``g1`` vertices are processed in a fixed order; each is either mapped to
  an unused ``g2`` vertex (substitution) or deleted;
* edge costs are charged incrementally — when both endpoints of an edge
  have been processed its fate (substitution / deletion / insertion) is
  known;
* once every ``g1`` vertex is processed, the remaining ``g2`` vertices and
  their incident edges are inserted;
* an admissible lower bound built from vertex- and edge-label multisets
  prunes the search, and a bipartite-assignment upper bound
  (:mod:`repro.graph.ged_approx`) seeds the incumbent.

The default :class:`~repro.graph.operations.UniformCostModel` reproduces
the paper's uniform model, under which the distance is a metric and the
values of Fig. 1 / Table III are integers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Hashable

from repro.graph.budget import Budget, Interval
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.operations import (
    CostModel,
    EdgeDeletion,
    EdgeInsertion,
    EdgeRelabeling,
    EditPath,
    UNIFORM_COSTS,
    UniformCostModel,
    VertexDeletion,
    VertexInsertion,
    VertexRelabeling,
)

VertexId = Hashable

#: Mapping image used for deleted vertices.
DELETED = None


@dataclass
class GedResult:
    """Outcome of a graph-edit-distance computation.

    Attributes
    ----------
    distance:
        The (minimum, when ``optimal``) total edit cost.
    mapping:
        ``g1 vertex -> g2 vertex`` for substituted vertices and
        ``g1 vertex -> None`` for deleted ones. Unlisted ``g2`` vertices are
        insertions.
    optimal:
        ``False`` only when a ``node_limit`` or :class:`Budget` stopped the
        search early; the reported distance is then an upper bound.
    expanded_nodes:
        Number of search-tree nodes expanded (used by the ablation bench).
    lower_bound:
        Certified lower bound on the exact distance. Equals ``distance``
        when ``optimal``; on truncation it is the best admissible bound
        over the abandoned frontier (never above ``distance``).
    found:
        Whether ``mapping`` realises a complete solution of cost at most
        ``distance``. ``False`` only when a caller-supplied ``upper_bound``
        cut off every complete assignment before truncation — "truncated
        with incumbent" (``True``) vs "no solution found" (``False``).
    """

    distance: float
    mapping: dict[VertexId, VertexId | None]
    optimal: bool
    expanded_nodes: int
    lower_bound: float | None = None
    found: bool = True

    def interval(self) -> Interval:
        """Certified ``[lower, upper]`` interval around the exact distance."""
        lower = self.lower_bound
        if lower is None:
            lower = self.distance if self.optimal else 0.0
        return Interval(lower=max(0.0, min(lower, self.distance)), upper=self.distance)


def _multiset_bound(
    counter1: Counter,
    counter2: Counter,
    indel: float,
    mismatch: float,
) -> float:
    """Admissible assignment bound between two label multisets.

    ``max(n1, n2) - overlap`` elements cannot be matched for free; each costs
    at least ``min(mismatch, 2 * indel)`` when both sides still have stock,
    and the size difference costs ``indel`` each.
    """
    n1, n2 = sum(counter1.values()), sum(counter2.values())
    overlap = sum((counter1 & counter2).values())
    paired_mismatches = min(n1, n2) - overlap
    return abs(n1 - n2) * indel + paired_mismatches * min(mismatch, 2.0 * indel)


class _DfGed:
    """One depth-first branch-and-bound run."""

    def __init__(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        costs: CostModel,
        upper_bound: float | None,
        node_limit: int | None,
        budget: Budget | None = None,
        seed_mapping: dict[VertexId, VertexId | None] | None = None,
    ) -> None:
        self.g1 = g1
        self.g2 = g2
        self.costs = costs
        self.node_limit = node_limit
        self.budget = budget
        self.expanded = 0
        # Process high-degree vertices first: their edge costs are decided
        # early, which tightens pruning.
        self.order = sorted(
            g1.vertices(), key=lambda v: (-g1.degree(v), repr(v))
        )
        self.g2_vertices = list(g2.vertices())
        self.best = float("inf") if upper_bound is None else float(upper_bound)
        self.best_mapping: dict[VertexId, VertexId | None] = {}
        self.realized = False
        if seed_mapping is not None:
            # The incumbent is a real complete assignment (bipartite or
            # full-rewrite seed), not just a numeric cap: a truncated run
            # can hand it back as a realised solution.
            self.best_mapping = dict(seed_mapping)
            self.realized = True
        self.uniform = isinstance(costs, UniformCostModel)
        self.truncated = False
        # Best admissible bound over states the truncation abandoned: the
        # certified lower-bound side of the returned interval.
        self.abandoned_min = float("inf")

    # -- lower bound ----------------------------------------------------
    def _remaining_bound(self, level: int, used: set[VertexId]) -> float:
        if not self.uniform:
            return 0.0
        indel = self.costs.indel_cost
        mismatch = self.costs.mismatch_cost
        rem1 = Counter(self.g1.vertex_label(v) for v in self.order[level:])
        rem2 = Counter(
            self.g2.vertex_label(w) for w in self.g2_vertices if w not in used
        )
        bound = _multiset_bound(rem1, rem2, indel, mismatch)
        processed = set(self.order[:level])
        open1 = Counter(
            label
            for u, v, label in self.g1.edges()
            if u not in processed or v not in processed
        )
        open2 = Counter(
            label
            for u, v, label in self.g2.edges()
            if u not in used or v not in used
        )
        return bound + _multiset_bound(open1, open2, indel, mismatch)

    # -- incremental edge costs ------------------------------------------
    def _substitution_cost(
        self,
        u: VertexId,
        w: VertexId,
        mapping: dict[VertexId, VertexId | None],
    ) -> float:
        cost = self.costs.vertex_substitution(
            self.g1.vertex_label(u), self.g2.vertex_label(w)
        )
        for prev, image in mapping.items():
            edge1 = self.g1.has_edge(u, prev)
            edge2 = image is not DELETED and self.g2.has_edge(w, image)
            if edge1 and edge2:
                cost += self.costs.edge_substitution(
                    self.g1.edge_label(u, prev), self.g2.edge_label(w, image)
                )
            elif edge1:
                cost += self.costs.edge_deletion(self.g1.edge_label(u, prev))
            elif edge2:
                cost += self.costs.edge_insertion(self.g2.edge_label(w, image))
        return cost

    def _deletion_cost(
        self, u: VertexId, mapping: dict[VertexId, VertexId | None]
    ) -> float:
        cost = self.costs.vertex_deletion(self.g1.vertex_label(u))
        for prev in mapping:
            if self.g1.has_edge(u, prev):
                cost += self.costs.edge_deletion(self.g1.edge_label(u, prev))
        return cost

    def _completion_cost(self, used: set[VertexId]) -> float:
        """Insert the untouched part of ``g2``."""
        cost = 0.0
        for w in self.g2_vertices:
            if w not in used:
                cost += self.costs.vertex_insertion(self.g2.vertex_label(w))
        for a, b, label in self.g2.edges():
            if a not in used or b not in used:
                cost += self.costs.edge_insertion(label)
        return cost

    # -- search -----------------------------------------------------------
    def _exhausted(self) -> bool:
        if self.node_limit is not None and self.expanded >= self.node_limit:
            return True
        return self.budget is not None and self.budget.exhausted(self.expanded)

    def run(self) -> GedResult:
        self._extend(0, {}, set(), 0.0)
        if self.truncated:
            lower = min(self.best, self.abandoned_min)
        else:
            lower = self.best
        return GedResult(
            distance=self.best,
            mapping=dict(self.best_mapping),
            optimal=not self.truncated,
            expanded_nodes=self.expanded,
            lower_bound=max(0.0, lower),
            found=self.realized,
        )

    def _extend(
        self,
        level: int,
        mapping: dict[VertexId, VertexId | None],
        used: set[VertexId],
        cost_so_far: float,
    ) -> None:
        if self.truncated or self._exhausted():
            self.truncated = True
            bound = cost_so_far + self._remaining_bound(level, used)
            if bound < self.abandoned_min:
                self.abandoned_min = bound
            return
        self.expanded += 1
        if level == len(self.order):
            total = cost_so_far + self._completion_cost(used)
            if total < self.best:
                self.best = total
                self.best_mapping = dict(mapping)
                self.realized = True
            return
        if cost_so_far + self._remaining_bound(level, used) >= self.best:
            return
        u = self.order[level]
        branches: list[tuple[float, VertexId | None]] = []
        for w in self.g2_vertices:
            if w not in used:
                branches.append((self._substitution_cost(u, w, mapping), w))
        branches.append((self._deletion_cost(u, mapping), DELETED))
        branches.sort(key=lambda item: (item[0], repr(item[1])))
        for step_cost, w in branches:
            new_cost = cost_so_far + step_cost
            if new_cost >= self.best:
                continue
            mapping[u] = w
            if w is not DELETED:
                used.add(w)
            self._extend(level + 1, mapping, used, new_cost)
            if w is not DELETED:
                used.discard(w)
            del mapping[u]


def _seed_incumbent(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel,
) -> tuple[float, dict[VertexId, VertexId | None]]:
    """A finite *realised* incumbent for any cost model.

    Prefers the bipartite-assignment estimate (its distance is the exact
    induced cost of its mapping, for every cost model); when SciPy/NumPy
    are unavailable, falls back to the full-rewrite mapping (delete all of
    ``g1``, insert all of ``g2``), which every cost model can price. Either
    way the search starts from a complete assignment, so a truncated run
    always has a realised solution to hand back (never an ``inf`` or
    unrealised "upper bound").
    """
    # Local import: ged_approx builds on the same cost models but must
    # stay importable without the exact solver.
    from repro.graph.ged_approx import bipartite_ged, induced_edit_cost

    try:
        estimate = bipartite_ged(g1, g2, costs=costs)
        return estimate.distance, estimate.mapping
    except ImportError:  # no scipy/numpy: worst-case full rewrite
        mapping = {v: DELETED for v in g1.vertices()}
        return induced_edit_cost(g1, g2, mapping, costs), mapping


def graph_edit_distance(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel = UNIFORM_COSTS,
    upper_bound: float | None = None,
    node_limit: int | None = None,
    budget: Budget | None = None,
) -> GedResult:
    """Exact ``DistEd(g1, g2)`` with the realising vertex mapping.

    Parameters
    ----------
    costs:
        Cost model; the default reproduces the paper's uniform model.
    upper_bound:
        Optional incumbent to start from. When omitted, a realised seed
        assignment (bipartite estimate, or the full-rewrite mapping
        without SciPy) starts the search for **every** cost model, so a
        truncated result always carries a finite, realised distance.
    node_limit:
        Optional cap on expanded nodes; when hit, the result carries
        ``optimal=False``, the distance is an upper bound and
        ``lower_bound`` a certified lower bound.
    budget:
        Optional :class:`~repro.graph.budget.Budget` (wall clock and/or
        expansions) checked inside the expansion loop; exhaustion
        truncates exactly like ``node_limit``.
    """
    seed_mapping = None
    seed = upper_bound
    if seed is None:
        seed_cost, seed_mapping = _seed_incumbent(g1, g2, costs)
        # Tiny epsilon: the search may re-find an equal-cost complete
        # mapping and record it (pruning uses >= best).
        seed = seed_cost + 1e-9
    search = _DfGed(g1, g2, costs, seed, node_limit, budget, seed_mapping)
    result = search.run()
    if result.distance == float("inf") and result.optimal:
        # Only reachable with a caller-supplied infinite upper bound on a
        # completed search — kept as a defensive invariant.
        raise RuntimeError(  # pragma: no cover - defensive
            "edit-distance search failed to find any assignment"
        )
    return result


def ged(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel = UNIFORM_COSTS,
) -> float:
    """Shorthand for the exact distance value only."""
    return graph_edit_distance(g1, g2, costs=costs).distance


def edit_path_from_mapping(
    g1: LabeledGraph,
    g2: LabeledGraph,
    mapping: dict[VertexId, VertexId | None],
) -> EditPath:
    """Materialise an explicit edit sequence realising ``mapping``.

    The returned path applies to ``g1`` (deletions first, then relabelings,
    then insertions) and produces a graph isomorphic to ``g2``. Vertices
    inserted from ``g2`` keep their ``g2`` identifier unless it collides
    with a surviving ``g1`` identifier, in which case a fresh tuple id
    ``("ins", id)`` is used.
    """
    path = EditPath()
    kept = {u: w for u, w in mapping.items() if w is not DELETED}
    deleted = [u for u, w in mapping.items() if w is DELETED]
    image_of = dict(kept)

    # 1. Delete g1 edges that have no counterpart edge in g2.
    for u, v, _label in list(g1.edges()):
        u_img, v_img = image_of.get(u), image_of.get(v)
        if u_img is None or v_img is None or not g2.has_edge(u_img, v_img):
            path.append(EdgeDeletion(u, v))

    # 2. Delete unmapped vertices (now isolated).
    for u in deleted:
        path.append(VertexDeletion(u))

    # 3. Relabel surviving vertices and edges.
    for u, w in kept.items():
        if g1.vertex_label(u) != g2.vertex_label(w):
            path.append(VertexRelabeling(u, g1.vertex_label(u), g2.vertex_label(w)))
    for u, v, label in g1.edges():
        u_img, v_img = image_of.get(u), image_of.get(v)
        if u_img is not None and v_img is not None and g2.has_edge(u_img, v_img):
            target_label = g2.edge_label(u_img, v_img)
            if label != target_label:
                path.append(EdgeRelabeling(u, v, label, target_label))

    # 4. Insert g2-only vertices, avoiding id collisions with survivors.
    survivors = set(kept)
    reverse = {w: u for u, w in kept.items()}
    inserted_id: dict[VertexId, VertexId] = {}
    for w in g2.vertices():
        if w in reverse:
            continue
        new_id = w if w not in survivors else ("ins", w)
        inserted_id[w] = new_id
        reverse[w] = new_id
        path.append(VertexInsertion(new_id, g2.vertex_label(w)))

    # 5. Insert g2 edges with no counterpart in g1.
    for a, b, label in g2.edges():
        u, v = reverse[a], reverse[b]
        already = (
            a not in inserted_id
            and b not in inserted_id
            and g1.has_edge(reverse_lookup_origin(a, kept), reverse_lookup_origin(b, kept))
        )
        if not already:
            path.append(EdgeInsertion(u, v, label))
    return path


def reverse_lookup_origin(
    image: VertexId, kept: dict[VertexId, VertexId]
) -> VertexId | None:
    """The ``g1`` vertex mapped onto ``image``, or ``None``."""
    for u, w in kept.items():
        if w == image:
            return u
    return None
