"""Exact graph edit distance (Definition 8).

``DistEd(g1, g2)`` is the minimum total cost over all edit-operation
sequences transforming ``g1`` into ``g2``. The solver below is a
depth-first branch and bound over vertex assignments (DF-GED):

* ``g1`` vertices are processed in a fixed order; each is either mapped to
  an unused ``g2`` vertex (substitution) or deleted;
* edge costs are charged incrementally — when both endpoints of an edge
  have been processed its fate (substitution / deletion / insertion) is
  known;
* once every ``g1`` vertex is processed, the remaining ``g2`` vertices and
  their incident edges are inserted;
* an admissible lower bound built from vertex- and edge-label multisets
  prunes the search, and a bipartite-assignment upper bound
  (:mod:`repro.graph.ged_approx`) seeds the incumbent.

The default :class:`~repro.graph.operations.UniformCostModel` reproduces
the paper's uniform model, under which the distance is a metric and the
values of Fig. 1 / Table III are integers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Hashable

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.operations import (
    CostModel,
    EdgeDeletion,
    EdgeInsertion,
    EdgeRelabeling,
    EditPath,
    UNIFORM_COSTS,
    UniformCostModel,
    VertexDeletion,
    VertexInsertion,
    VertexRelabeling,
)

VertexId = Hashable

#: Mapping image used for deleted vertices.
DELETED = None


@dataclass
class GedResult:
    """Outcome of a graph-edit-distance computation.

    Attributes
    ----------
    distance:
        The (minimum, when ``optimal``) total edit cost.
    mapping:
        ``g1 vertex -> g2 vertex`` for substituted vertices and
        ``g1 vertex -> None`` for deleted ones. Unlisted ``g2`` vertices are
        insertions.
    optimal:
        ``False`` only when a ``node_limit`` stopped the search early; the
        reported distance is then an upper bound.
    expanded_nodes:
        Number of search-tree nodes expanded (used by the ablation bench).
    """

    distance: float
    mapping: dict[VertexId, VertexId | None]
    optimal: bool
    expanded_nodes: int


def _multiset_bound(
    counter1: Counter,
    counter2: Counter,
    indel: float,
    mismatch: float,
) -> float:
    """Admissible assignment bound between two label multisets.

    ``max(n1, n2) - overlap`` elements cannot be matched for free; each costs
    at least ``min(mismatch, 2 * indel)`` when both sides still have stock,
    and the size difference costs ``indel`` each.
    """
    n1, n2 = sum(counter1.values()), sum(counter2.values())
    overlap = sum((counter1 & counter2).values())
    paired_mismatches = min(n1, n2) - overlap
    return abs(n1 - n2) * indel + paired_mismatches * min(mismatch, 2.0 * indel)


class _DfGed:
    """One depth-first branch-and-bound run."""

    def __init__(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        costs: CostModel,
        upper_bound: float | None,
        node_limit: int | None,
    ) -> None:
        self.g1 = g1
        self.g2 = g2
        self.costs = costs
        self.node_limit = node_limit
        self.expanded = 0
        # Process high-degree vertices first: their edge costs are decided
        # early, which tightens pruning.
        self.order = sorted(
            g1.vertices(), key=lambda v: (-g1.degree(v), repr(v))
        )
        self.g2_vertices = list(g2.vertices())
        self.best = float("inf") if upper_bound is None else float(upper_bound)
        self.best_mapping: dict[VertexId, VertexId | None] = {}
        self.uniform = isinstance(costs, UniformCostModel)
        self.truncated = False

    # -- lower bound ----------------------------------------------------
    def _remaining_bound(self, level: int, used: set[VertexId]) -> float:
        if not self.uniform:
            return 0.0
        indel = self.costs.indel_cost
        mismatch = self.costs.mismatch_cost
        rem1 = Counter(self.g1.vertex_label(v) for v in self.order[level:])
        rem2 = Counter(
            self.g2.vertex_label(w) for w in self.g2_vertices if w not in used
        )
        bound = _multiset_bound(rem1, rem2, indel, mismatch)
        processed = set(self.order[:level])
        open1 = Counter(
            label
            for u, v, label in self.g1.edges()
            if u not in processed or v not in processed
        )
        open2 = Counter(
            label
            for u, v, label in self.g2.edges()
            if u not in used or v not in used
        )
        return bound + _multiset_bound(open1, open2, indel, mismatch)

    # -- incremental edge costs ------------------------------------------
    def _substitution_cost(
        self,
        u: VertexId,
        w: VertexId,
        mapping: dict[VertexId, VertexId | None],
    ) -> float:
        cost = self.costs.vertex_substitution(
            self.g1.vertex_label(u), self.g2.vertex_label(w)
        )
        for prev, image in mapping.items():
            edge1 = self.g1.has_edge(u, prev)
            edge2 = image is not DELETED and self.g2.has_edge(w, image)
            if edge1 and edge2:
                cost += self.costs.edge_substitution(
                    self.g1.edge_label(u, prev), self.g2.edge_label(w, image)
                )
            elif edge1:
                cost += self.costs.edge_deletion(self.g1.edge_label(u, prev))
            elif edge2:
                cost += self.costs.edge_insertion(self.g2.edge_label(w, image))
        return cost

    def _deletion_cost(
        self, u: VertexId, mapping: dict[VertexId, VertexId | None]
    ) -> float:
        cost = self.costs.vertex_deletion(self.g1.vertex_label(u))
        for prev in mapping:
            if self.g1.has_edge(u, prev):
                cost += self.costs.edge_deletion(self.g1.edge_label(u, prev))
        return cost

    def _completion_cost(self, used: set[VertexId]) -> float:
        """Insert the untouched part of ``g2``."""
        cost = 0.0
        for w in self.g2_vertices:
            if w not in used:
                cost += self.costs.vertex_insertion(self.g2.vertex_label(w))
        for a, b, label in self.g2.edges():
            if a not in used or b not in used:
                cost += self.costs.edge_insertion(label)
        return cost

    # -- search -----------------------------------------------------------
    def run(self) -> GedResult:
        self._extend(0, {}, set(), 0.0)
        return GedResult(
            distance=self.best,
            mapping=dict(self.best_mapping),
            optimal=not self.truncated,
            expanded_nodes=self.expanded,
        )

    def _extend(
        self,
        level: int,
        mapping: dict[VertexId, VertexId | None],
        used: set[VertexId],
        cost_so_far: float,
    ) -> None:
        if self.node_limit is not None and self.expanded >= self.node_limit:
            self.truncated = True
            return
        self.expanded += 1
        if level == len(self.order):
            total = cost_so_far + self._completion_cost(used)
            if total < self.best:
                self.best = total
                self.best_mapping = dict(mapping)
            return
        if cost_so_far + self._remaining_bound(level, used) >= self.best:
            return
        u = self.order[level]
        branches: list[tuple[float, VertexId | None]] = []
        for w in self.g2_vertices:
            if w not in used:
                branches.append((self._substitution_cost(u, w, mapping), w))
        branches.append((self._deletion_cost(u, mapping), DELETED))
        branches.sort(key=lambda item: (item[0], repr(item[1])))
        for step_cost, w in branches:
            new_cost = cost_so_far + step_cost
            if new_cost >= self.best:
                continue
            mapping[u] = w
            if w is not DELETED:
                used.add(w)
            self._extend(level + 1, mapping, used, new_cost)
            if w is not DELETED:
                used.discard(w)
            del mapping[u]


def graph_edit_distance(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel = UNIFORM_COSTS,
    upper_bound: float | None = None,
    node_limit: int | None = None,
) -> GedResult:
    """Exact ``DistEd(g1, g2)`` with the realising vertex mapping.

    Parameters
    ----------
    costs:
        Cost model; the default reproduces the paper's uniform model.
    upper_bound:
        Optional incumbent to start from. When omitted and the cost model is
        uniform, a bipartite-assignment estimate seeds the search.
    node_limit:
        Optional cap on expanded nodes; when hit, the result carries
        ``optimal=False`` and the distance is an upper bound.
    """
    seed = upper_bound
    if seed is None:
        # Local import: ged_approx builds on the same cost models but must
        # stay importable without the exact solver.
        from repro.graph.ged_approx import bipartite_ged

        seed = bipartite_ged(g1, g2, costs=costs).distance + 1e-9
    search = _DfGed(g1, g2, costs, seed, node_limit)
    result = search.run()
    if result.distance == float("inf"):  # pragma: no cover - defensive
        raise RuntimeError("edit-distance search failed to find any assignment")
    return result


def ged(
    g1: LabeledGraph,
    g2: LabeledGraph,
    costs: CostModel = UNIFORM_COSTS,
) -> float:
    """Shorthand for the exact distance value only."""
    return graph_edit_distance(g1, g2, costs=costs).distance


def edit_path_from_mapping(
    g1: LabeledGraph,
    g2: LabeledGraph,
    mapping: dict[VertexId, VertexId | None],
) -> EditPath:
    """Materialise an explicit edit sequence realising ``mapping``.

    The returned path applies to ``g1`` (deletions first, then relabelings,
    then insertions) and produces a graph isomorphic to ``g2``. Vertices
    inserted from ``g2`` keep their ``g2`` identifier unless it collides
    with a surviving ``g1`` identifier, in which case a fresh tuple id
    ``("ins", id)`` is used.
    """
    path = EditPath()
    kept = {u: w for u, w in mapping.items() if w is not DELETED}
    deleted = [u for u, w in mapping.items() if w is DELETED]
    image_of = dict(kept)

    # 1. Delete g1 edges that have no counterpart edge in g2.
    for u, v, _label in list(g1.edges()):
        u_img, v_img = image_of.get(u), image_of.get(v)
        if u_img is None or v_img is None or not g2.has_edge(u_img, v_img):
            path.append(EdgeDeletion(u, v))

    # 2. Delete unmapped vertices (now isolated).
    for u in deleted:
        path.append(VertexDeletion(u))

    # 3. Relabel surviving vertices and edges.
    for u, w in kept.items():
        if g1.vertex_label(u) != g2.vertex_label(w):
            path.append(VertexRelabeling(u, g1.vertex_label(u), g2.vertex_label(w)))
    for u, v, label in g1.edges():
        u_img, v_img = image_of.get(u), image_of.get(v)
        if u_img is not None and v_img is not None and g2.has_edge(u_img, v_img):
            target_label = g2.edge_label(u_img, v_img)
            if label != target_label:
                path.append(EdgeRelabeling(u, v, label, target_label))

    # 4. Insert g2-only vertices, avoiding id collisions with survivors.
    survivors = set(kept)
    reverse = {w: u for u, w in kept.items()}
    inserted_id: dict[VertexId, VertexId] = {}
    for w in g2.vertices():
        if w in reverse:
            continue
        new_id = w if w not in survivors else ("ins", w)
        inserted_id[w] = new_id
        reverse[w] = new_id
        path.append(VertexInsertion(new_id, g2.vertex_label(w)))

    # 5. Insert g2 edges with no counterpart in g1.
    for a, b, label in g2.edges():
        u, v = reverse[a], reverse[b]
        already = (
            a not in inserted_id
            and b not in inserted_id
            and g1.has_edge(reverse_lookup_origin(a, kept), reverse_lookup_origin(b, kept))
        )
        if not already:
            path.append(EdgeInsertion(u, v, label))
    return path


def reverse_lookup_origin(
    image: VertexId, kept: dict[VertexId, VertexId]
) -> VertexId | None:
    """The ``g1`` vertex mapped onto ``image``, or ``None``."""
    for u, w in kept.items():
        if w == image:
            return u
    return None
