"""Maximum common connected subgraph (Definition 7).

The paper defines ``mcs(g1, g2)`` as the largest *connected* subgraph of
``g1`` that is subgraph-isomorphic to ``g2``, and measures it by its number
of edges (``|mcs(g1, g2)|`` in Definitions 9–10 counts edges).

The solver is a McGregor-style branch and bound:

* a state is an injective, label-preserving vertex mapping grown so that
  every vertex after the seed attaches to the mapped part through at least
  one *compatible* edge (a ``g1`` edge whose image is a ``g2`` edge with the
  same label) — this keeps the common subgraph connected by construction;
* the matched edge set is, for a given vertex mapping, *all* compatible
  edges between mapped vertices (always optimal for edge maximisation);
* branching picks one attachable ``g1`` vertex and tries every feasible
  image plus an "exclude this vertex" branch, which makes the enumeration
  complete;
* seed symmetry is broken by forbidding, for seed ``v0``, every ``g1``
  vertex that precedes ``v0`` in a fixed order;
* the bound ``matched + min(available g1 edges, available g2 edges)`` prunes
  hopeless branches.

Both objectives of Definition 7 are supported: ``"edges"`` (used by every
numeric example in the paper — the default) and ``"vertices"`` (the literal
reading of the definition text).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable

from repro.graph.budget import Budget
from repro.graph.labeled_graph import LabeledGraph, edge_key

VertexId = Hashable

_OBJECTIVES = ("edges", "vertices")


@dataclass
class McsResult:
    """Outcome of a maximum-common-subgraph computation.

    Attributes
    ----------
    mapping:
        Injective map from ``g1`` vertices to ``g2`` vertices realising the
        common subgraph.
    matched_edges:
        Canonical ``g1`` edge pairs included in the common subgraph.
    optimal:
        ``False`` only when a :class:`Budget` truncated the search; the
        realised subgraph is then a lower bound on the true MCS.
    size_upper:
        Certified upper bound on the true MCS edge count when truncated
        (``None`` means the search completed, i.e. the bound is ``size``).
    """

    mapping: dict[VertexId, VertexId] = field(default_factory=dict)
    matched_edges: frozenset[tuple[VertexId, VertexId]] = frozenset()
    optimal: bool = True
    size_upper: int | None = None

    @property
    def size(self) -> int:
        """Edge count — the paper's ``|mcs(g1, g2)|``."""
        return len(self.matched_edges)

    @property
    def edge_bound(self) -> int:
        """Certified upper bound on the true MCS edge count."""
        return self.size if self.size_upper is None else max(self.size, self.size_upper)

    def size_interval(self) -> tuple[int, int]:
        """Certified ``[realised, upper-bound]`` range of ``|mcs|``."""
        return (self.size, self.edge_bound)

    @property
    def order(self) -> int:
        """Vertex count of the common subgraph."""
        return len(self.mapping)

    def subgraph(self, g1: LabeledGraph) -> LabeledGraph:
        """Materialise the common subgraph as a subgraph of ``g1``."""
        if self.matched_edges:
            return g1.edge_subgraph(self.matched_edges)
        sub = LabeledGraph(name="mcs")
        for vertex in self.mapping:
            sub.add_vertex(vertex, g1.vertex_label(vertex))
        return sub


def _compatible(g1: LabeledGraph, g2: LabeledGraph, v: VertexId, w: VertexId) -> bool:
    return g1.vertex_label(v) == g2.vertex_label(w)


def _edge_compatible(
    g1: LabeledGraph,
    g2: LabeledGraph,
    u: VertexId,
    v: VertexId,
    fu: VertexId,
    fv: VertexId,
) -> bool:
    return (
        g1.has_edge(u, v)
        and g2.has_edge(fu, fv)
        and g1.edge_label(u, v) == g2.edge_label(fu, fv)
    )


class _McsSearch:
    """One branch-and-bound run over a fixed seed order."""

    def __init__(
        self,
        g1: LabeledGraph,
        g2: LabeledGraph,
        objective: str,
        budget: Budget | None = None,
        initial_best_edges: int | None = None,
    ) -> None:
        self.g1 = g1
        self.g2 = g2
        self.objective = objective
        self.budget = budget
        self.expanded = 0
        self.truncated = False
        # Best optimistic edge bound over states the truncation abandoned;
        # together with the incumbent it certifies ``size_upper``.
        self.abandoned_edges = 0
        self.best_edges = -1
        self.best_order = 0
        if initial_best_edges is not None and objective == "edges":
            # Refinement re-runs seed the incumbent size from the previous
            # truncated pass so pruning starts tight immediately.
            self.best_edges = initial_best_edges
        self.best_mapping: dict[VertexId, VertexId] = {}
        self.best_matched: frozenset = frozenset()
        # Deterministic vertex order for seed symmetry breaking.
        self.g1_order = {v: i for i, v in enumerate(sorted(g1.vertices(), key=repr))}

    # -- scoring -------------------------------------------------------
    def _better(self, edges: int, order: int) -> bool:
        if self.objective == "edges":
            return (edges, order) > (self.best_edges, self.best_order)
        return (order, edges) > (self.best_order, self.best_edges)

    def _record(self, mapping: dict, matched: set) -> None:
        edges, order = len(matched), len(mapping)
        if self._better(edges, order):
            self.best_edges = edges
            self.best_order = order
            self.best_mapping = dict(mapping)
            self.best_matched = frozenset(matched)

    # -- bounding ------------------------------------------------------
    def _upper_bound(self, mapping: dict, matched: set, forbidden: set) -> tuple[int, int]:
        """Optimistic (edges, vertices) reachable from this state."""
        used_images = set(mapping.values())
        avail1 = 0
        for u, v, _ in self.g1.edges():
            if edge_key(u, v) in matched:
                continue
            u_open = u not in mapping and u not in forbidden
            v_open = v not in mapping and v not in forbidden
            if u_open or v_open:
                avail1 += 1
        avail2 = sum(
            1
            for a, b, _ in self.g2.edges()
            if a not in used_images or b not in used_images
        )
        edge_bound = len(matched) + min(avail1, avail2)
        open_vertices = sum(
            1
            for v in self.g1.vertices()
            if v not in mapping and v not in forbidden
        )
        vertex_bound = len(mapping) + min(
            open_vertices, self.g2.order - len(used_images)
        )
        return edge_bound, vertex_bound

    def _prunable(self, mapping: dict, matched: set, forbidden: set) -> bool:
        edge_bound, vertex_bound = self._upper_bound(mapping, matched, forbidden)
        if self.objective == "edges":
            return (edge_bound, vertex_bound) <= (self.best_edges, self.best_order)
        return (vertex_bound, edge_bound) <= (self.best_order, self.best_edges)

    # -- search --------------------------------------------------------
    def _exhausted(self) -> bool:
        return self.budget is not None and self.budget.exhausted(self.expanded)

    def run(self) -> McsResult:
        self._record({}, set())
        self._visited: set[frozenset] = set()
        seeds = sorted(self.g1.vertices(), key=lambda v: self.g1_order[v])
        for v0 in seeds:
            if self.truncated or self._exhausted():
                # Remaining seeds were never explored: only the global
                # bound min(|g1|, |g2|) covers them.
                self.truncated = True
                self.abandoned_edges = max(
                    self.abandoned_edges, min(self.g1.size, self.g2.size)
                )
                break
            # Seed symmetry breaking: the subgraph's first vertex in the
            # fixed order is its seed, so earlier vertices are excluded.
            forbidden = {v for v in seeds if self.g1_order[v] < self.g1_order[v0]}
            for w0 in self.g2.vertices():
                if _compatible(self.g1, self.g2, v0, w0):
                    self._extend({v0: w0}, set(), forbidden)
        upper = None
        if self.truncated:
            upper = max(self.best_edges, self.abandoned_edges, 0)
        return McsResult(
            self.best_mapping,
            self.best_matched,
            optimal=not self.truncated,
            size_upper=upper,
        )

    def _attachable(self, mapping: dict, forbidden: set) -> list[VertexId]:
        """Unmapped g1 vertices adjacent to the mapped part, deterministic order."""
        frontier = {
            n
            for v in mapping
            for n in self.g1.neighbors(v)
            if n not in mapping and n not in forbidden
        }
        return sorted(frontier, key=lambda v: self.g1_order[v])

    def _extend(self, mapping: dict, matched: set, forbidden: set) -> None:
        # Branch over *every* feasible (vertex, image) extension: a vertex
        # with no feasible image now may gain one once more of the subgraph
        # is mapped, so single-vertex branching with a permanent exclusion
        # branch would be incomplete. Memoising visited partial mappings
        # removes the duplicate orderings this enumeration creates.
        if self.truncated or self._exhausted():
            # Record the state as a (realised) incumbent candidate, then
            # abandon it: its optimistic edge bound joins the certificate.
            self.truncated = True
            self._record(mapping, matched)
            edge_bound, _ = self._upper_bound(mapping, matched, forbidden)
            if edge_bound > self.abandoned_edges:
                self.abandoned_edges = edge_bound
            return
        self.expanded += 1
        state = frozenset(mapping.items())
        if state in self._visited:
            return
        self._visited.add(state)
        self._record(mapping, matched)
        if self._prunable(mapping, matched, forbidden):
            return
        used_images = set(mapping.values())
        for v in self._attachable(mapping, forbidden):
            candidate_images = {
                w
                for u in self.g1.neighbors(v)
                if u in mapping
                for w in self.g2.neighbors(mapping[u])
                if w not in used_images and _compatible(self.g1, self.g2, v, w)
            }
            for w in sorted(candidate_images, key=repr):
                gained = {
                    edge_key(v, u)
                    for u in self.g1.neighbors(v)
                    if u in mapping
                    and _edge_compatible(self.g1, self.g2, v, u, w, mapping[u])
                }
                if not gained:
                    continue  # no compatible edge: connectivity would break
                mapping[v] = w
                self._extend(mapping, matched | gained, forbidden)
                del mapping[v]


def maximum_common_subgraph(
    g1: LabeledGraph,
    g2: LabeledGraph,
    objective: str = "edges",
    budget: Budget | None = None,
    initial_best_edges: int | None = None,
) -> McsResult:
    """Compute ``mcs(g1, g2)`` (Definition 7).

    Parameters
    ----------
    objective:
        ``"edges"`` maximises the matched edge count (what every numeric
        example of the paper uses); ``"vertices"`` maximises the vertex
        count, matching the literal definition text.
    budget:
        Optional :class:`~repro.graph.budget.Budget`; on exhaustion the
        result carries ``optimal=False`` and a certified ``size_upper``.
    initial_best_edges:
        Pruning seed for refinement re-runs (``"edges"`` objective only):
        the edge count of an already-realised common subgraph. The search
        then only reports *strictly better* subgraphs — the caller must
        merge the result with the solution that realised the seed.
    """
    if objective not in _OBJECTIVES:
        raise ValueError(f"objective must be one of {_OBJECTIVES}, got {objective!r}")
    # The search grows subgraphs of g1; starting from the smaller side keeps
    # the branching factor down and the result is symmetric in size.
    return _McsSearch(g1, g2, objective, budget, initial_best_edges).run()


def mcs_size(g1: LabeledGraph, g2: LabeledGraph) -> int:
    """``|mcs(g1, g2)|`` — the edge count of the maximum common subgraph."""
    return maximum_common_subgraph(g1, g2, objective="edges").size
