"""Engine wiring for the vectorized index: candidate source + batch stage.

:class:`IndexedSource` is the array-speed counterpart of
:class:`~repro.engine.plan.BoundOrderedSource`: one batched kernel call
computes the optimistic vectors of *every* candidate, NumPy sorts the
visiting order, and — where a sound upfront filter exists — candidates
are **pre-filtered before the cascade ever sees them**:

* ``threshold`` queries prune every graph whose lower bound already
  exceeds the threshold in the source (via the VP-tree's sublinear range
  search for the metric-backed ``edit``/``edit-normalized`` measures, a
  vectorized mask otherwise); only survivors enter the per-candidate
  cascade. Pre-filtered ids are recorded on the run context so the
  engine counts them exactly like cascade prunes (see
  ``QueryStats.pruned_by_batch``).
* ``skyline``/``skyband``/``topk`` have no sound exact-free upfront
  filter (their cutoffs depend on exact vectors discovered during the
  scan), so the source contributes the vectorized bound computation and
  visiting order, and feedback pruning stays in the cascade — running
  only on survivors of whatever the source removed.

:class:`BatchParetoStage` is the vectorized cascade member: it keeps the
observed exact vectors in a growing ``(m, d)`` array and answers "how
many exact vectors dominate this bound?" with three array comparisons
instead of a Python loop over dominators — semantics (tolerance and NaN
behaviour included) exactly match :func:`repro.skyline.utils.dominates`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.engine.plan import (
    Candidate,
    CandidateSource,
    RankBoundStage,
    Stage,
    ThresholdBoundStage,
)
from repro.index.kernels import BATCH_BOUND_KERNELS, bound_matrix
from repro.index.store import FeatureStore
from repro.index.vptree import signature_distances

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.core import RunContext

#: Measures whose lower bound is (a monotone transform of) the signature
#: metric — the ones the VP-tree can range-search.
_METRIC_MEASURES = ("edit", "edit-normalized")


def _normalized(raw: float) -> float:
    """The scalar ``edit-normalized`` bound transform (exact float ops)."""
    return raw / (1.0 + raw)


def _raw_cutoff(threshold: float, ceiling: int) -> float:
    """Largest raw metric distance whose normalized bound is ≤ ``threshold``.

    ``value = fl(raw / fl(1 + raw))`` is nondecreasing in the integer
    ``raw`` (correctly-rounded monotone ops), so the survivor set is a
    prefix — found by bisection on the *same float computation* the
    scalar bound performs, which keeps the pre-filter exactly as strict
    as the scalar ``threshold-bound`` stage.
    """
    if _normalized(float(ceiling)) <= threshold:
        return math.inf
    if _normalized(0.0) > threshold:
        return -1.0
    low, high = 0, ceiling  # f(low) <= threshold < f(high)
    while high - low > 1:
        mid = (low + high) // 2
        if _normalized(float(mid)) <= threshold:
            low = mid
        else:
            high = mid
    return float(low)


class IndexedSource(CandidateSource):
    """Vectorized bound computation, ordering and threshold pre-filtering."""

    computes_bounds = True

    def __init__(
        self,
        store_provider: Callable[[], FeatureStore],
        prefilter: bool = True,
    ) -> None:
        self._store_provider = store_provider
        self._prefilter = prefilter

    def candidates(self, ctx: "RunContext") -> list[Candidate]:
        store = self._store_provider()
        matrix = store.sync()
        query = matrix.pack_query(ctx.query_features)
        kind = ctx.spec.kind
        if kind == "threshold" and self._prefilter:
            return self._threshold_candidates(ctx, store, query)
        ids = matrix.ids
        bounds = bound_matrix(matrix, query, ctx.measures)
        if kind in ("skyline", "skyband"):
            order = np.lexsort((ids, bounds.sum(axis=1)))
        elif kind == "topk":
            order = np.lexsort((ids, bounds[:, 0]))
        else:  # threshold with pre-filtering disabled: id order
            order = np.argsort(ids)
        return [
            Candidate(int(ids[row]), tuple(bounds[row].tolist())) for row in order
        ]

    # ------------------------------------------------------------------
    # Threshold pre-filtering
    # ------------------------------------------------------------------
    def _threshold_candidates(
        self, ctx: "RunContext", store: FeatureStore, query
    ) -> list[Candidate]:
        matrix = store.matrix
        measure = ctx.measures[0]
        threshold = ctx.spec.threshold
        ids = matrix.ids
        kernel = BATCH_BOUND_KERNELS.get(measure.name)
        if kernel is None:
            # No bound for this measure: nothing can be filtered.
            order = np.argsort(ids)
            return [Candidate(int(ids[row]), (0.0,)) for row in order]

        if measure.name in _METRIC_MEASURES and len(matrix):
            # Sublinear candidate generation: VP-tree range search over
            # the raw metric, then the exact scalar bound per survivor.
            if measure.name == "edit":
                radius = threshold
            else:
                ceiling = int(matrix.orders.max() + matrix.sizes.max()) + (
                    query.order + query.size
                )
                radius = _raw_cutoff(threshold, max(ceiling, 1))
            if radius < 0:
                rows = np.empty(0, dtype=np.int64)
            elif math.isinf(radius):
                rows = np.arange(len(matrix), dtype=np.int64)
            else:
                rows = store.vptree().range_rows(query, radius)
            raw = signature_distances(matrix, rows, query)
            values = raw if measure.name == "edit" else raw / (1.0 + raw)
        else:
            rows = np.arange(len(matrix), dtype=np.int64)
            values = kernel(matrix, query)

        keep = values <= threshold
        survivor_rows, survivor_values = rows[keep], values[keep]
        pruned_mask = np.ones(len(matrix), dtype=bool)
        pruned_mask[survivor_rows] = False
        ctx.prefiltered.extend(np.sort(ids[pruned_mask]).tolist())
        order = np.argsort(ids[survivor_rows])
        return [
            Candidate(
                int(ids[survivor_rows[i]]), (float(survivor_values[i]),)
            )
            for i in order
        ]


# ----------------------------------------------------------------------
# Batched cascade stage
# ----------------------------------------------------------------------
class BatchParetoStage(Stage):
    """Pareto dominator counting over a packed exact-vector array.

    Drop-in replacement for :class:`~repro.engine.plan.ParetoPruneStage`
    with identical semantics; ``decide`` is O(1) array calls instead of
    a Python loop over every observed exact vector.
    """

    name = "pareto-bound(batch)"

    def __init__(self, prune_limit: int, tolerance: float) -> None:
        self.prune_limit = prune_limit
        self.tolerance = tolerance
        self._exact: np.ndarray | None = None
        self._count = 0

    def decide(self, candidate: Candidate) -> "str | None":
        if candidate.bounds is None or self._count == 0:
            return None
        exact = self._exact[: self._count]
        bounds = np.asarray(candidate.bounds, dtype=np.float64)
        # Mirrors utils.dominates exactly, NaN-as-tie included: not
        # (p_i > q_i + tol) anywhere, and (p_i < q_i - tol) somewhere.
        dominating = np.logical_not(exact > bounds + self.tolerance).all(
            axis=1
        ) & (exact < bounds - self.tolerance).any(axis=1)
        if np.count_nonzero(dominating) >= self.prune_limit:
            return "prune"
        return None

    def observe(self, graph_id: int, values: tuple[float, ...]) -> None:
        if self._exact is None:
            self._exact = np.empty((8, len(values)), dtype=np.float64)
        elif self._count == self._exact.shape[0]:
            grown = np.empty(
                (2 * self._exact.shape[0], self._exact.shape[1]), dtype=np.float64
            )
            grown[: self._count] = self._exact[: self._count]
            self._exact = grown
        self._exact[self._count] = values
        self._count += 1


def batch_bound_stage_for(spec) -> Stage:
    """The vectorized bound-pruning stage for ``spec``'s query kind.

    Skyline/skyband get the batched Pareto stage; the topk/threshold
    cutoffs are already O(1) per candidate, so the scalar stages are
    reused as-is.
    """
    if spec.kind == "skyline":
        return BatchParetoStage(1, spec.tolerance)
    if spec.kind == "skyband":
        return BatchParetoStage(spec.k, spec.tolerance)
    if spec.kind == "topk":
        return RankBoundStage(spec.k)
    return ThresholdBoundStage(spec.threshold)


def batch_bound_pruning(ctx: "RunContext") -> Stage:
    """Cascade entry for :func:`batch_bound_stage_for`."""
    return batch_bound_stage_for(ctx.spec)
