"""repro.index — vectorized feature store, bound kernels and VP-tree.

The array-speed candidate-filtering layer (requires NumPy):

* :class:`~repro.index.matrix.SignatureMatrix` — every graph's
  label-multiset/size signature packed into shared interned-vocabulary
  ``int64`` matrices, maintained incrementally at row granularity;
* :mod:`~repro.index.kernels` — batched lower/upper-bound kernels that
  are bit-identical to the scalar bounds in :mod:`repro.graph.features`;
* :class:`~repro.index.vptree.VPTree` — sublinear range / nearest-row
  candidate generation over the signature edit-bound metric;
* :class:`~repro.index.store.FeatureStore` — keeps all of the above in
  sync with a :class:`~repro.db.database.GraphDatabase` via its
  ``version`` dirty flag;
* :class:`~repro.index.source.IndexedSource` /
  :func:`~repro.index.source.batch_bound_pruning` — the engine plan
  parts the ``vectorized`` backend is made of.
"""

from repro.index.kernels import (
    BATCH_BOUND_KERNELS,
    bound_matrix,
    dist_gu_lower_bounds,
    dist_mcs_lower_bounds,
    edit_lower_bounds,
    mcs_upper_bounds,
    normalized_edit_lower_bounds,
)
from repro.index.matrix import QuerySignature, SignatureMatrix
from repro.index.source import BatchParetoStage, IndexedSource, batch_bound_pruning
from repro.index.store import FeatureStore
from repro.index.vptree import VPTree, signature_distances

__all__ = [
    "BATCH_BOUND_KERNELS",
    "BatchParetoStage",
    "FeatureStore",
    "IndexedSource",
    "QuerySignature",
    "SignatureMatrix",
    "VPTree",
    "batch_bound_pruning",
    "bound_matrix",
    "dist_gu_lower_bounds",
    "dist_mcs_lower_bounds",
    "edit_lower_bounds",
    "mcs_upper_bounds",
    "normalized_edit_lower_bounds",
    "signature_distances",
]
