"""Packed label-signature matrix: the array form of ``GraphFeatures``.

:class:`SignatureMatrix` stores one row per graph — its vertex-label and
edge-label multisets as count vectors over a shared *interned vocabulary*
(one column per distinct label ever seen), plus its order and size — in
contiguous ``int64`` NumPy arrays. This is the data layout the batched
bound kernels (:mod:`repro.index.kernels`) and the vantage-point tree
(:mod:`repro.index.vptree`) operate on: one kernel call bounds a query
against *every* row at array speed instead of walking per-graph
``collections.Counter`` objects in the interpreter.

The matrix is maintained **incrementally** at row granularity:

* :meth:`add` appends a row (amortized O(row) via capacity doubling;
  labels unseen so far extend the vocabulary with a zero-backfilled
  column);
* :meth:`discard` removes a row in O(row) by swapping the last row into
  the hole — no rebuild, no re-featurization of unrelated graphs;
* re-:meth:`add`-ing a present id overwrites its row in place.

Label vocabulary columns are keyed by the ``repr`` of the label, exactly
as :func:`repro.graph.features._freeze` stores them, so a matrix row and
the frozen feature tuples describe the same multiset and the kernels can
reproduce the scalar bounds bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.graph.features import GraphFeatures

#: Initial row/column capacity of a fresh matrix.
_INITIAL_CAPACITY = 8


class _CountBlock:
    """A capacity-managed ``(rows, vocab)`` int64 count matrix."""

    def __init__(self) -> None:
        self.vocab: dict[str, int] = {}
        self._data = np.zeros((_INITIAL_CAPACITY, _INITIAL_CAPACITY), dtype=np.int64)

    def _grow(self, rows: int, columns: int) -> None:
        grown_rows = max(rows, self._data.shape[0])
        grown_columns = max(columns, self._data.shape[1])
        if (grown_rows, grown_columns) == self._data.shape:
            return
        grown = np.zeros((grown_rows, grown_columns), dtype=np.int64)
        grown[: self._data.shape[0], : self._data.shape[1]] = self._data
        self._data = grown

    def column(self, label: str) -> int:
        """The column of ``label``, interning it on first sight."""
        index = self.vocab.get(label)
        if index is None:
            index = self.vocab[label] = len(self.vocab)
            if index >= self._data.shape[1]:
                self._grow(self._data.shape[0], 2 * self._data.shape[1])
        return index

    def set_row(self, row: int, labels: tuple[tuple[str, int], ...]) -> None:
        """Write one frozen ``(label, count)`` signature into ``row``."""
        if row >= self._data.shape[0]:
            self._grow(2 * self._data.shape[0], self._data.shape[1])
        columns = [self.column(label) for label, _ in labels]
        self._data[row, :] = 0
        for column, (_, count) in zip(columns, labels):
            self._data[row, column] = count

    def move_row(self, source: int, target: int) -> None:
        # Full capacity width: beyond-vocab columns of a written row are
        # zero, and copying them keeps the target clean if the vocabulary
        # later grows into that region.
        self._data[target, :] = self._data[source, :]

    def view(self, n_rows: int) -> np.ndarray:
        """The live ``(n_rows, |vocab|)`` window (shared memory, read-only use)."""
        return self._data[:n_rows, : len(self.vocab)]

    def project(self, labels: tuple[tuple[str, int], ...]) -> np.ndarray:
        """A signature as a ``(|vocab|,)`` vector over the *current* vocab.

        Labels outside the vocabulary are dropped: no stored row has a
        positive count there, so they can never contribute to an overlap
        — the totals the bounds also need are taken from the features'
        ``order``/``size`` instead, which do include them.
        """
        vector = np.zeros(len(self.vocab), dtype=np.int64)
        for label, count in labels:
            index = self.vocab.get(label)
            if index is not None:
                vector[index] = count
        return vector


class SignatureMatrix:
    """Graph label signatures packed into contiguous NumPy arrays.

    Rows are addressed by graph id through :attr:`row_of`; the row order
    is registration order disturbed only by the swap-removal of
    :meth:`discard`, and is never semantically load-bearing — the
    kernels return values aligned with :meth:`ids`, and callers sort.
    """

    def __init__(self) -> None:
        self.vertex_block = _CountBlock()
        self.edge_block = _CountBlock()
        self._ids = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._orders = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._sizes = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.row_of: dict[int, int] = {}
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def __contains__(self, graph_id: object) -> bool:
        return graph_id in self.row_of

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _grow_rows(self) -> None:
        if self._n < self._ids.shape[0]:
            return
        capacity = 2 * self._ids.shape[0]
        for name in ("_ids", "_orders", "_sizes"):
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, grown)

    def add(self, graph_id: int, features: GraphFeatures) -> None:
        """Insert (or overwrite) the row of ``graph_id``."""
        row = self.row_of.get(graph_id)
        if row is None:
            self._grow_rows()
            row = self._n
            self._n += 1
            self.row_of[graph_id] = row
        self._ids[row] = graph_id
        self._orders[row] = features.order
        self._sizes[row] = features.size
        self.vertex_block.set_row(row, features.vertex_labels)
        self.edge_block.set_row(row, features.edge_labels)

    def discard(self, graph_id: int) -> None:
        """Remove the row of ``graph_id`` (no-op when absent), O(row)."""
        row = self.row_of.pop(graph_id, None)
        if row is None:
            return
        last = self._n - 1
        if row != last:
            moved_id = int(self._ids[last])
            self._ids[row] = moved_id
            self._orders[row] = self._orders[last]
            self._sizes[row] = self._sizes[last]
            self.vertex_block.move_row(last, row)
            self.edge_block.move_row(last, row)
            self.row_of[moved_id] = row
        self._n = last

    # ------------------------------------------------------------------
    # Array views (aligned row windows over live rows)
    # ------------------------------------------------------------------
    @property
    def ids(self) -> np.ndarray:
        """Graph ids per live row, ``(n,) int64``."""
        return self._ids[: self._n]

    @property
    def orders(self) -> np.ndarray:
        return self._orders[: self._n]

    @property
    def sizes(self) -> np.ndarray:
        return self._sizes[: self._n]

    @property
    def vertex_counts(self) -> np.ndarray:
        """``(n, |vertex vocab|) int64`` vertex-label count window."""
        return self.vertex_block.view(self._n)

    @property
    def edge_counts(self) -> np.ndarray:
        """``(n, |edge vocab|) int64`` edge-label count window."""
        return self.edge_block.view(self._n)

    # ------------------------------------------------------------------
    # Query packing
    # ------------------------------------------------------------------
    def pack_query(self, features: GraphFeatures) -> "QuerySignature":
        """Project a query's features onto this matrix's vocabulary."""
        return QuerySignature(
            order=features.order,
            size=features.size,
            vertex_vector=self.vertex_block.project(features.vertex_labels),
            edge_vector=self.edge_block.project(features.edge_labels),
        )

    def __repr__(self) -> str:
        return (
            f"<SignatureMatrix: {self._n} rows, "
            f"{len(self.vertex_block.vocab)} vertex / "
            f"{len(self.edge_block.vocab)} edge labels>"
        )


class QuerySignature:
    """One graph's signature projected onto a matrix vocabulary.

    ``order``/``size`` are the graph's *full* totals (out-of-vocabulary
    labels included); the count vectors only carry in-vocabulary labels,
    which is exactly what the overlap terms of the bounds need.
    """

    __slots__ = ("order", "size", "vertex_vector", "edge_vector")

    def __init__(
        self,
        order: int,
        size: int,
        vertex_vector: np.ndarray,
        edge_vector: np.ndarray,
    ) -> None:
        self.order = order
        self.size = size
        self.vertex_vector = vertex_vector
        self.edge_vector = edge_vector
