"""Incrementally-maintained feature store bound to one ``GraphDatabase``.

:class:`FeatureStore` keeps a :class:`~repro.index.matrix.SignatureMatrix`
(and, lazily, a :class:`~repro.index.vptree.VPTree`) in sync with a
database through the same ``GraphDatabase.version`` dirty flag the
``indexed`` backend uses — but instead of rebuilding per-graph feature
objects, :meth:`sync` diffs the live id set against the matrix rows and
applies **row-level invalidation**: removed ids drop their row in O(row),
new ids append one row, untouched graphs are never re-featurized. Graph
ids are never reused and stored features are frozen at insert, so the id
diff is exactly the set of stale rows.

The VP-tree is rebuilt (lazily, on first use) after any sync that
changed the matrix, because it holds row indices into it.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.db.database import GraphDatabase
from repro.graph.features import GraphFeatures
from repro.index.kernels import bound_matrix
from repro.index.matrix import QuerySignature, SignatureMatrix
from repro.index.vptree import VPTree
from repro.measures.base import DistanceMeasure


class FeatureStore:
    """Array-backed feature index that follows database mutation."""

    def __init__(self, database: GraphDatabase) -> None:
        self.database = database
        self.matrix = SignatureMatrix()
        self._version: int | None = None
        self._vptree: VPTree | None = None
        #: Maintenance counters (observability; asserted by tests).
        self.rows_added = 0
        self.rows_dropped = 0
        self.syncs = 0

    def sync(self) -> SignatureMatrix:
        """Bring the matrix up to date with the database (row-level diff)."""
        if self._version == self.database.version:
            return self.matrix
        live = set(self.database.ids())
        known = set(self.matrix.row_of)
        for graph_id in known - live:
            self.matrix.discard(graph_id)
            self.rows_dropped += 1
        for graph_id in sorted(live - known):
            self.matrix.add(graph_id, self.database.entry(graph_id).features)
            self.rows_added += 1
        self._version = self.database.version
        self._vptree = None
        self.syncs += 1
        return self.matrix

    def vptree(self) -> VPTree:
        """The VP-tree over the current matrix (built lazily per version)."""
        self.sync()
        if self._vptree is None:
            self._vptree = VPTree(self.matrix)
        return self._vptree

    # ------------------------------------------------------------------
    # Batched bound evaluation
    # ------------------------------------------------------------------
    def pack_query(self, query_features: GraphFeatures) -> QuerySignature:
        return self.sync().pack_query(query_features)

    def bounds(
        self,
        query_features: GraphFeatures,
        measures: Sequence[DistanceMeasure],
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, B)``: ``B[i, j]`` bounds ``measures[j]`` on graph ``ids[i]``.

        One batched kernel call per measure — the whole database's
        optimistic vectors without a per-graph Python loop.
        """
        matrix = self.sync()
        query = matrix.pack_query(query_features)
        return matrix.ids, bound_matrix(matrix, query, measures)

    def __repr__(self) -> str:
        return (
            f"<FeatureStore over {self.database.name!r}: {len(self.matrix)} rows, "
            f"+{self.rows_added}/-{self.rows_dropped} across {self.syncs} syncs>"
        )
