"""Batched bound kernels: every scalar bound of ``features.py``, whole-db.

Each kernel takes a :class:`~repro.index.matrix.SignatureMatrix` and a
:class:`~repro.index.matrix.QuerySignature` and returns one value per
live row, computed in a handful of NumPy array operations instead of a
per-graph Python loop. The kernels are **bit-identical** to their scalar
counterparts in :mod:`repro.graph.features` (property-tested with exact
``==``): every intermediate is integer arithmetic on counts below 2⁵³
followed by the same IEEE-754 double operations the scalar code performs,
so the optimistic vectors the engine prunes with do not change by a single
ulp when the vectorized path is enabled.

Bound registry: :func:`bound_matrix` assembles the full ``(n, d)``
optimistic-vector matrix for a measure tuple, mirroring the per-measure
dispatch of :data:`repro.db.index._BOUND_FUNCTIONS` (measures without a
kernel contribute an all-zero column — never pruned incorrectly).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.index.matrix import QuerySignature, SignatureMatrix
from repro.measures.base import DistanceMeasure


def _overlaps(counts: np.ndarray, query_vector: np.ndarray) -> np.ndarray:
    """Σ min(row, query) per row — the multiset-intersection sizes."""
    if counts.shape[1] == 0:
        return np.zeros(counts.shape[0], dtype=np.int64)
    return np.minimum(counts, query_vector[np.newaxis, :]).sum(axis=1)


def _counter_bounds(
    totals: np.ndarray, query_total: int, overlaps: np.ndarray
) -> np.ndarray:
    """Vector form of ``features._counter_bound`` (int64)."""
    return np.abs(totals - query_total) + (
        np.minimum(totals, query_total) - overlaps
    )


def edit_lower_bounds(
    matrix: SignatureMatrix, query: QuerySignature
) -> np.ndarray:
    """``edit_distance_lower_bound`` against every row, ``(n,) float64``."""
    vertex_part = _counter_bounds(
        matrix.orders, query.order, _overlaps(matrix.vertex_counts, query.vertex_vector)
    )
    edge_part = _counter_bounds(
        matrix.sizes, query.size, _overlaps(matrix.edge_counts, query.edge_vector)
    )
    return (vertex_part + edge_part).astype(np.float64)


def normalized_edit_lower_bounds(
    matrix: SignatureMatrix, query: QuerySignature
) -> np.ndarray:
    """``raw / (1 + raw)`` of the edit bound (``edit-normalized`` measure)."""
    raw = edit_lower_bounds(matrix, query)
    return raw / (1.0 + raw)


def mcs_upper_bounds(
    matrix: SignatureMatrix, query: QuerySignature
) -> np.ndarray:
    """``mcs_upper_bound`` against every row, ``(n,) int64``."""
    return _overlaps(matrix.edge_counts, query.edge_vector)


def dist_mcs_lower_bounds(
    matrix: SignatureMatrix, query: QuerySignature
) -> np.ndarray:
    """``dist_mcs_lower_bound`` against every row, ``(n,) float64``."""
    caps = mcs_upper_bounds(matrix, query)
    denominators = np.maximum(matrix.sizes, query.size)
    safe = np.maximum(denominators, 1)
    bounds = 1.0 - np.minimum(caps, denominators) / safe
    return np.where(denominators == 0, 0.0, bounds)


def dist_gu_lower_bounds(
    matrix: SignatureMatrix, query: QuerySignature
) -> np.ndarray:
    """``dist_gu_lower_bound`` against every row, ``(n,) float64``."""
    caps = np.minimum(
        mcs_upper_bounds(matrix, query), np.minimum(matrix.sizes, query.size)
    )
    unions = matrix.sizes + query.size - caps
    safe = np.maximum(unions, 1)
    bounds = 1.0 - caps / safe
    return np.where(unions <= 0, 0.0, bounds)


#: Per-measure batched kernels (the vector form of ``_BOUND_FUNCTIONS``).
BATCH_BOUND_KERNELS = {
    "edit": edit_lower_bounds,
    "edit-normalized": normalized_edit_lower_bounds,
    "mcs": dist_mcs_lower_bounds,
    "union": dist_gu_lower_bounds,
}


def bound_matrix(
    matrix: SignatureMatrix,
    query: QuerySignature,
    measures: Sequence[DistanceMeasure],
) -> np.ndarray:
    """Optimistic ``(n, d) float64`` matrix: rows align with ``matrix.ids``.

    Column ``j`` is the lower bound of ``measures[j]`` against every
    graph; measures without a registered kernel get the trivial bound 0.
    """
    n = len(matrix)
    columns = []
    for measure in measures:
        kernel = BATCH_BOUND_KERNELS.get(measure.name)
        if kernel is None:
            columns.append(np.zeros(n, dtype=np.float64))
        else:
            columns.append(np.asarray(kernel(matrix, query), dtype=np.float64))
    if not columns:
        return np.zeros((n, 0), dtype=np.float64)
    return np.stack(columns, axis=1)
