"""Vantage-point tree over the label-signature edit-bound metric.

The feature-space edit lower bound

    d(g, h) = |order(g) − order(h)| + (min(order) − vertex-overlap)
            + |size(g) − size(h)|  + (min(size)  − edge-overlap)

is a true metric on label signatures (each summand is the multiset
matching distance ``max(|A|,|B|) − |A ∩ B|``, which satisfies the
triangle inequality; sums of metrics are metrics). That makes the
classic vantage-point tree applicable: pick a vantage row, split the
rest at the median distance μ, and at query time skip the inner subtree
whenever ``d(q, v) > μ + r`` and the outer whenever ``d(q, v) < μ − r``
— sublinear candidate generation for range (threshold) and nearest-
neighbour (top-k) queries over the *bound*, without ever touching most
rows.

Distances are evaluated with the batched kernels — subtree partitions
and leaf scans are single vectorized calls over row subsets — so even
the worst case degrades to the array-speed linear scan, never to a
Python-loop scan. :attr:`VPTree.last_rows_scanned` exposes how many rows
a search actually touched; the bench asserts sublinearity with it.
"""

from __future__ import annotations

import numpy as np

from repro.index.matrix import QuerySignature, SignatureMatrix

#: Subtrees at or below this size are scanned with one batched call.
_LEAF_SIZE = 16


def signature_distances(
    matrix: SignatureMatrix, rows: np.ndarray, query: QuerySignature
) -> np.ndarray:
    """Edit-bound metric from ``query`` to each of ``rows``, ``float64``."""
    orders = matrix.orders[rows]
    sizes = matrix.sizes[rows]
    vertex_counts = matrix.vertex_counts[rows]
    edge_counts = matrix.edge_counts[rows]
    if vertex_counts.shape[1]:
        v_overlap = np.minimum(vertex_counts, query.vertex_vector).sum(axis=1)
    else:
        v_overlap = np.zeros(len(rows), dtype=np.int64)
    if edge_counts.shape[1]:
        e_overlap = np.minimum(edge_counts, query.edge_vector).sum(axis=1)
    else:
        e_overlap = np.zeros(len(rows), dtype=np.int64)
    vertex_part = np.abs(orders - query.order) + (
        np.minimum(orders, query.order) - v_overlap
    )
    edge_part = np.abs(sizes - query.size) + (
        np.minimum(sizes, query.size) - e_overlap
    )
    return (vertex_part + edge_part).astype(np.float64)


def _row_signature(matrix: SignatureMatrix, row: int) -> QuerySignature:
    return QuerySignature(
        order=int(matrix.orders[row]),
        size=int(matrix.sizes[row]),
        vertex_vector=matrix.vertex_counts[row],
        edge_vector=matrix.edge_counts[row],
    )


class _Node:
    __slots__ = ("vantage", "radius", "inner", "outer", "leaf_rows")

    def __init__(self, vantage: int, radius: float, inner, outer) -> None:
        self.vantage = vantage
        self.radius = radius
        self.inner = inner
        self.outer = outer
        self.leaf_rows = None


class _Leaf:
    __slots__ = ("leaf_rows",)

    def __init__(self, rows: np.ndarray) -> None:
        self.leaf_rows = rows


class VPTree:
    """A vantage-point tree over the live rows of a signature matrix.

    The tree holds *row indices*; it is valid only for the matrix state
    it was built from (the store rebuilds it after any mutation batch —
    construction is O(n log n) batched kernel calls).
    """

    def __init__(self, matrix: SignatureMatrix, leaf_size: int = _LEAF_SIZE) -> None:
        self.matrix = matrix
        self.leaf_size = max(2, leaf_size)
        #: Rows whose distance the last search actually computed.
        self.last_rows_scanned = 0
        #: Ambient deadline captured at search entry; every batched scan
        #: consults it, so a deep traversal over a large tree cannot hold
        #: an expired query (the pre-filter used to be unchecked between
        #: the engine's per-candidate checks).
        self._deadline = None
        rows = np.arange(len(matrix), dtype=np.int64)
        self._root = self._build(rows)

    def _build(self, rows: np.ndarray):
        if len(rows) == 0:
            return None
        if len(rows) <= self.leaf_size:
            return _Leaf(rows)
        vantage = int(rows[0])
        rest = rows[1:]
        distances = signature_distances(
            self.matrix, rest, _row_signature(self.matrix, vantage)
        )
        radius = float(np.median(distances))
        inner_mask = distances <= radius
        inner, outer = rest[inner_mask], rest[~inner_mask]
        if len(inner) == 0 or len(outer) == 0:
            # Degenerate split (many duplicate signatures): scan as leaf.
            return _Leaf(rows)
        return _Node(vantage, radius, self._build(inner), self._build(outer))

    # ------------------------------------------------------------------
    # Range search
    # ------------------------------------------------------------------
    def range_rows(self, query: QuerySignature, radius: float) -> np.ndarray:
        """Rows with metric distance ≤ ``radius``, ascending row order."""
        from repro.engine.deadline import current_deadline

        self._deadline = current_deadline()
        self.last_rows_scanned = 0
        hits: list[np.ndarray] = []
        self._range(self._root, query, radius, hits)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def _scan(self, rows: np.ndarray, query: QuerySignature) -> np.ndarray:
        if self._deadline is not None:
            self._deadline.check()
        self.last_rows_scanned += len(rows)
        return signature_distances(self.matrix, rows, query)

    def _range(self, node, query, radius, hits) -> None:
        if node is None:
            return
        if node.leaf_rows is not None:
            rows = node.leaf_rows
            distances = self._scan(rows, query)
            hits.append(rows[distances <= radius])
            return
        vantage = np.asarray([node.vantage], dtype=np.int64)
        distance = float(self._scan(vantage, query)[0])
        if distance <= radius:
            hits.append(vantage)
        if distance <= node.radius + radius:
            self._range(node.inner, query, radius, hits)
        if distance >= node.radius - radius:
            self._range(node.outer, query, radius, hits)

    # ------------------------------------------------------------------
    # k nearest rows by the bound metric
    # ------------------------------------------------------------------
    def nearest_rows(
        self, query: QuerySignature, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` rows nearest to ``query``: ``(rows, distances)``.

        Ties beyond position ``k`` break toward smaller graph ids so the
        result is deterministic regardless of tree shape.
        """
        from repro.engine.deadline import current_deadline

        self._deadline = current_deadline()
        self.last_rows_scanned = 0
        if k <= 0 or self._root is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.astype(np.float64)
        # (distance, graph id, row) triples of the best candidates so far.
        best: list[tuple[float, int, int]] = []
        self._nearest(self._root, query, k, best)
        best.sort()
        rows = np.asarray([row for _, _, row in best[:k]], dtype=np.int64)
        distances = np.asarray([d for d, _, _ in best[:k]], dtype=np.float64)
        return rows, distances

    def _tau(self, best: list, k: int) -> float:
        if len(best) < k:
            return np.inf
        return max(entry[0] for entry in best)

    def _offer(self, rows: np.ndarray, distances: np.ndarray, k: int, best: list) -> None:
        ids = self.matrix.ids
        for row, distance in zip(rows.tolist(), distances.tolist()):
            best.append((distance, int(ids[row]), row))
        best.sort()
        del best[k:]

    def _nearest(self, node, query, k: int, best: list) -> None:
        if node is None:
            return
        if node.leaf_rows is not None:
            rows = node.leaf_rows
            self._offer(rows, self._scan(rows, query), k, best)
            return
        vantage = np.asarray([node.vantage], dtype=np.int64)
        distance = float(self._scan(vantage, query)[0])
        self._offer(vantage, np.asarray([distance]), k, best)
        # Visit the likelier side first so tau tightens early.
        near_first = distance <= node.radius
        first, second = (
            (node.inner, node.outer) if near_first else (node.outer, node.inner)
        )
        self._nearest(first, query, k, best)
        tau = self._tau(best, k)
        crosses = (
            distance <= node.radius + tau
            if not near_first
            else distance >= node.radius - tau
        )
        if crosses:
            self._nearest(second, query, k, best)
