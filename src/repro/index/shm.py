"""SignatureMatrix over the process boundary, as shared-memory arrays.

The persistent worker pool (:mod:`repro.engine.workers`) wants workers to
frontier-check candidates against their optimistic bound vectors — but
shipping one bound vector per candidate per chunk re-introduces exactly
the per-task serialization this PR removes. Instead, the parent parks the
shard's :class:`~repro.index.matrix.SignatureMatrix` **once per (store,
version)**: :class:`SharedMatrixExport` copies the five live row windows
(ids, orders, sizes, vertex/edge label counts) as raw bytes into a single
``multiprocessing.shared_memory`` segment and describes the layout in a
small picklable meta dict. Workers map the segment back into zero-copy
NumPy views (:func:`attach_matrix`) and recompute any chunk's bound rows
with the normal batched kernels (:func:`matrix_bounds`) — per-chunk tasks
then carry row *indices* and the packed query signature, nothing else.

Row indices are pinned at ship time: the parent captures ``row_of`` from
the synced matrix in the same drain that builds the tasks, and the
database cannot mutate mid-drain (the parent thread is the only mutator),
so index and export always describe the same version. A new version gets
a new segment (the old one is released once no task references it) — the
row-level delta story lives in the matrix itself, which
:meth:`FeatureStore.sync` maintains incrementally before each export.

Everything here is NumPy- and shared-memory-gated by the caller
(:meth:`WorkerPool.export_matrix`); any failure degrades to inline bound
shipping, never to a wrong answer.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict

import numpy as np

from repro.engine.workers import _LIVE_OWNERS, _segment_name, attach_segment
from repro.index.kernels import bound_matrix
from repro.index.matrix import QuerySignature

#: The row windows shipped, in segment layout order.
_ARRAYS = ("ids", "orders", "sizes", "vertex_counts", "edge_counts")

#: Attached segments cached per worker (keyed by segment name — names are
#: unique per export version, so a name change *is* the invalidation).
_ATTACH_LIMIT = 4


class SharedMatrixExport:
    """One store's SignatureMatrix parked in a shared-memory segment.

    :meth:`refresh` re-exports only when ``store.database.version``
    moved; repeated queries against an unmutated shard reuse the segment
    (and every worker's existing zero-copy mapping of it).
    """

    def __init__(self, store) -> None:
        self._store_ref = weakref.ref(store)
        self._version: int | None = None
        self._segment = None
        self._meta: dict | None = None

    def store_ref(self):
        return self._store_ref()

    def refresh(self):
        """``(meta, matrix)`` for the store's current version.

        ``meta`` is the picklable worker-side handle; ``matrix`` the live
        parent-side :class:`SignatureMatrix` (for ``row_of`` and query
        packing). Raises on export failure — callers degrade to inline
        bounds.
        """
        store = self._store_ref()
        if store is None:
            raise RuntimeError("feature store was collected")
        matrix = store.sync()
        version = store.database.version
        if self._segment is not None and self._version == version:
            return self._meta, matrix
        arrays = {
            name: np.ascontiguousarray(getattr(matrix, name))
            for name in _ARRAYS
        }
        total = sum(array.nbytes for array in arrays.values())
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(
            create=True, size=max(1, total), name=_segment_name()
        )
        layout: dict[str, dict] = {}
        offset = 0
        for name, array in arrays.items():
            segment.buf[offset : offset + array.nbytes] = array.tobytes()
            layout[name] = {
                "shape": list(array.shape),
                "dtype": str(array.dtype),
                "offset": offset,
            }
            offset += array.nbytes
        self._drop_segment()
        self._segment = segment
        self._version = version
        self._meta = {"name": segment.name, "arrays": layout}
        _LIVE_OWNERS.add(self)
        return self._meta, matrix

    def segment_names(self) -> list[str]:
        return [self._segment.name] if self._segment is not None else []

    def _drop_segment(self) -> None:
        segment, self._segment = self._segment, None
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass

    def release(self) -> None:
        _LIVE_OWNERS.discard(self)
        self._drop_segment()
        self._meta = None
        self._version = None


class _AttachedMatrix:
    """Worker-side zero-copy views over an exported segment.

    Duck-typed for :func:`repro.index.kernels.bound_matrix` row subsets
    via :meth:`rows` — the kernels only need ``len``, ``orders``,
    ``sizes`` and the two count windows. Holds the segment handle so the
    views stay mapped for the object's lifetime.
    """

    def __init__(self, meta: dict) -> None:
        self._segment = attach_segment(meta["name"])
        self.arrays: dict[str, np.ndarray] = {}
        for name, spec in meta["arrays"].items():
            shape = tuple(spec["shape"])
            count = 1
            for extent in shape:
                count *= extent
            self.arrays[name] = np.frombuffer(
                self._segment.buf,
                dtype=np.dtype(spec["dtype"]),
                count=count,
                offset=spec["offset"],
            ).reshape(shape)

    def rows(self, indices: np.ndarray) -> "_RowSubset":
        return _RowSubset(
            orders=self.arrays["orders"][indices],
            sizes=self.arrays["sizes"][indices],
            vertex_counts=self.arrays["vertex_counts"][indices],
            edge_counts=self.arrays["edge_counts"][indices],
        )

    def ids(self, indices: np.ndarray) -> np.ndarray:
        return self.arrays["ids"][indices]

    def release(self) -> None:
        self.arrays = {}
        segment, self._segment = self._segment, None
        if segment is not None:
            try:
                segment.close()  # attach-only: never unlink
            except Exception:
                pass


class _RowSubset:
    """The selected rows, shaped like a matrix for the bound kernels."""

    __slots__ = ("orders", "sizes", "vertex_counts", "edge_counts")

    def __init__(self, orders, sizes, vertex_counts, edge_counts) -> None:
        self.orders = orders
        self.sizes = sizes
        self.vertex_counts = vertex_counts
        self.edge_counts = edge_counts

    def __len__(self) -> int:
        return int(self.orders.shape[0])


def attach_matrix(meta: dict, cache: OrderedDict) -> _AttachedMatrix:
    """The (cached) worker-side mapping of an exported segment."""
    attached = cache.get(meta["name"])
    if attached is None:
        attached = _AttachedMatrix(meta)
        cache[meta["name"]] = attached
        while len(cache) > _ATTACH_LIMIT:
            _, evicted = cache.popitem(last=False)
            evicted.release()
    else:
        cache.move_to_end(meta["name"])
    return attached


def matrix_bounds(
    meta: dict,
    rows: list[int],
    qsig: tuple,
    measures,
    cache: OrderedDict,
) -> dict[int, tuple[float, ...]]:
    """Per-graph-id optimistic vectors of a chunk, from the shared matrix."""
    attached = attach_matrix(meta, cache)
    indices = np.asarray(rows, dtype=np.int64)
    order, size, vertex_vector, edge_vector = qsig
    query = QuerySignature(
        order=order,
        size=size,
        vertex_vector=np.asarray(vertex_vector, dtype=np.int64),
        edge_vector=np.asarray(edge_vector, dtype=np.int64),
    )
    bounds = bound_matrix(attached.rows(indices), query, measures)
    ids = attached.ids(indices)
    return {
        int(graph_id): tuple(row) for graph_id, row in zip(ids, bounds)
    }
