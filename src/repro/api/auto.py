"""The ``auto`` execution backend: cost-based plan selection per query.

Where the fixed backends hard-code one point of the plan space, this one
asks :class:`repro.engine.planner.QueryPlanner` per query — database
size, average graph order, NumPy/pool availability and the session's
:class:`~repro.engine.planner.SelectivityProfile` of observed prune
rates and per-pair costs pick the candidate source, bound stage (batch
vs scalar), and serial vs pooled evaluation. Every executed query feeds
its :class:`~repro.db.stats.QueryStats` back into the profile, so the
decisions sharpen as the session runs; mis-predictions are additionally
caught mid-query by the planner's adaptive wrappers (stage drop,
serial→pooled switch), and every decision — predicted vs observed
selectivities, re-plan events, the costs of the losing plans — lands in
``stats.planner`` for ``ResultSet.explain()`` / ``to_dict()``.

Over a :class:`~repro.shard.store.ShardedGraphDatabase` the backend
scatter-gathers like ``sharded`` (shared bound stage across shards for
cross-shard pruning, merge consumers for the gather), but evaluators
are chosen *per shard* — a big shard may go pooled while a small one
stays serial — and the per-shard choices are reported individually.

The profile is per backend instance, i.e. per session. The server
caches one session per backend name behind its existing per-backend
lock, so all clients of a server share (and jointly train) one profile.
"""

from __future__ import annotations

import dataclasses
import time

from repro.db.database import GraphDatabase
from repro.db.index import FeatureIndex
from repro.api.spec import GraphQuery
from repro.api.backends import (
    BackendAnswer,
    ExecutionBackend,
    _numpy_available,
    register_backend,
)
from repro.engine.core import resolved_measures, run_plan
from repro.engine.evaluate import Evaluator, SerialEvaluator
from repro.engine.plan import (
    BoundOrderedSource,
    DatabaseOrderSource,
    EvaluationPlan,
    Stage,
    bound_stage_for,
)
from repro.engine.planner import (
    CALIBRATION_MIN,
    GATE_MIN_PREDICTED,
    AdaptiveEvaluator,
    AdaptiveStage,
    PlanDecision,
    QueryPlanner,
    SelectivityProfile,
    stage_warmup,
)
from repro.engine.scatter import ShardedSource, merge_consumer, merged_stats
from repro.shard.store import ShardedGraphDatabase


def _pool_started() -> bool:
    """Whether a persistent worker pool is already warm in this process
    (zeroes the startup term of the planner's pooled-cost estimate)."""
    from repro.engine import workers

    return any(pool.started for pool in workers._POOLS.values())


def _feedback_stages(decision: PlanDecision, events: list) -> tuple[str, ...]:
    """Stages whose observed selectivity should train the profile.

    A stage dropped mid-query stopped pruning by fiat — its end-of-query
    prune count reflects the drop, not the workload, and feeding it back
    would teach the cost model that pruning is worthless (and flip later
    queries to exhaustive plans). Keep the prior instead.
    """
    dropped = {
        event.get("stage")
        for event in events
        if event.get("event") == "drop-stage"
    }
    return tuple(name for name in decision.predicted if name not in dropped)


class AutoBackend(ExecutionBackend):
    """Cost-based adaptive planning over the full plan space.

    Parameters
    ----------
    database:
        Monolithic or sharded; the sharded case scatter-gathers.
    cache:
        Optional shared pair cache (cached-pairs stage joins every plan).
    profile:
        A :class:`SelectivityProfile` to share/resume; a fresh one is
        created when omitted.
    max_workers / chunk_size:
        Pool sizing if a plan goes pooled (defaults match ``parallel``).
    """

    name = "auto"

    def __init__(
        self,
        database: GraphDatabase,
        cache=None,
        profile: SelectivityProfile | None = None,
        max_workers: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(database)
        self.cache = cache
        self.profile = profile if profile is not None else SelectivityProfile()
        self.use_index = True  # duck-typed by Session.plan()
        self._numpy = _numpy_available()
        self.planner = QueryPlanner(
            self.profile,
            numpy_available=self._numpy,
            max_workers=max_workers,
        )
        self._max_workers = max_workers
        self._chunk_size = chunk_size
        # Monolithic providers, built lazily and version-synced.
        self._index = FeatureIndex()
        self._index_version = -1
        self._store = None
        self._pooled = None
        # Scatter path state (sharded databases only).
        self._sharded = isinstance(database, ShardedGraphDatabase)
        self._scatter = (
            ShardedSource(database, use_index=True) if self._sharded else None
        )
        self._shard_pooled: dict[int, object] = {}

    # -- topology observability ------------------------------------------
    @property
    def shard_count(self) -> int:
        return getattr(self.database, "shard_count", 1)

    @property
    def max_workers(self) -> int:
        return self.planner.max_workers

    def close(self) -> None:
        """Release pool attachments this backend created (the persistent
        pool itself stays warm for other sessions)."""
        if self._pooled is not None:
            self._pooled.release()
        for evaluator in self._shard_pooled.values():
            evaluator.release()

    # -- providers --------------------------------------------------------
    def _ensure_index(self) -> FeatureIndex:
        if self._index_version != self.database.version:
            self._index = FeatureIndex()
            for entry in self.database.entries():
                self._index.add(entry.graph_id, entry.features)
            self._index_version = self.database.version
        return self._index

    def _feature_store(self):
        if self._store is None:
            from repro.index import FeatureStore

            self._store = FeatureStore(self.database)
        return self._store

    def _pooled_evaluator(self):
        if self._pooled is None:
            from repro.engine.workers import PooledEvaluator

            self._pooled = PooledEvaluator(
                max_workers=self._max_workers, chunk_size=self._chunk_size
            )
        return self._pooled

    def _shard_pooled_evaluator(self, index: int):
        evaluator = self._shard_pooled.get(index)
        if evaluator is None:
            from repro.engine.workers import PooledEvaluator

            evaluator = self._shard_pooled[index] = PooledEvaluator(
                max_workers=self._max_workers, chunk_size=self._chunk_size
            )
        return evaluator

    # -- decision → plan materialization ----------------------------------
    def _avg_order(self) -> float:
        size = len(self.database)
        if size == 0:
            return 1.0
        return self.database.vertex_load / size

    def _decide(self, spec: GraphQuery, db_size: int) -> PlanDecision:
        return self.planner.decide(
            spec,
            db_size=db_size,
            avg_order=self._avg_order(),
            pool_started=_pool_started(),
        )

    def _source(self, decision: PlanDecision):
        if decision.source == "indexed":
            from repro.index import IndexedSource

            store = self._feature_store()
            return IndexedSource(
                lambda store=store: store, prefilter=True
            )
        if decision.source == "bound-ordered":
            return BoundOrderedSource(self._ensure_index)
        return DatabaseOrderSource()

    def _bound_stage(self, spec: GraphQuery, decision: PlanDecision) -> Stage:
        if decision.batch and self._numpy:
            from repro.index.source import batch_bound_stage_for

            return batch_bound_stage_for(spec)
        return bound_stage_for(spec)

    def _gated(
        self,
        spec: GraphQuery,
        stage: Stage,
        decision: PlanDecision,
        events: list,
        calibration: int,
        shard: int | None = None,
    ) -> Stage:
        """Wrap ``stage`` in the mid-query drop gate when its predicted
        selectivity is worth monitoring; tiny predictions skip the gate
        (the stage is ~free and a drop event would be noise)."""
        predicted = decision.predicted.get(stage.name, 0.0)
        if predicted < GATE_MIN_PREDICTED:
            return stage
        return AdaptiveStage(
            stage,
            predicted,
            events,
            calibration=calibration,
            warmup=stage_warmup(spec),
            shard=shard,
        )

    def _evaluator(
        self,
        spec: GraphQuery,
        decision: PlanDecision,
        events: list,
        pooled_provider,
        shard: int | None = None,
    ) -> Evaluator:
        if spec.anytime or decision.evaluator == "serial":
            return SerialEvaluator()
        if decision.evaluator == "pooled":
            return pooled_provider()
        return AdaptiveEvaluator(
            pooled_provider(),
            expected_survivors=decision.survivors,
            events=events,
            calibration=CALIBRATION_MIN,
            pool_started=_pool_started(),
            shard=shard,
        )

    def _stage_labels(
        self, spec: GraphQuery, decision: PlanDecision
    ) -> tuple[str, ...]:
        labels: tuple[str, ...] = ()
        if decision.stage is not None:
            labels = (decision.stage,)
        return labels + self._cache_labels()

    def build_plan(self, spec: GraphQuery) -> EvaluationPlan:
        """The plan the current decision would run (``Session.plan()``;
        :meth:`run` re-decides at execution time)."""
        decision = self._decide(spec, len(self.database))
        if self._sharded:
            return EvaluationPlan(
                source=self._scatter,
                cascade=self._monolithic_cascade(spec, decision, []),
                evaluator=SerialEvaluator(),
                stage_labels=self._stage_labels(spec, decision)
                + (merge_consumer(spec).name,),
            )
        events: list = []
        plan, _ = self._materialize(spec, decision, events)
        return plan

    def _monolithic_cascade(
        self, spec: GraphQuery, decision: PlanDecision, events: list
    ) -> tuple:
        if decision.stage is None:
            return self._cache_stages()
        stage = self._gated(
            spec,
            self._bound_stage(spec, decision),
            decision,
            events,
            calibration=self._calibration(len(self.database)),
        )
        return ((lambda ctx, stage=stage: stage),) + self._cache_stages()

    def _calibration(self, db_size: int) -> int:
        """Calibration prefix: enough candidates to trust the observed
        rate (pruning ramps up gradually on bound-ordered sources),
        small enough to leave a remainder worth re-planning. On tiny
        databases the prefix covers everything — no drop, by design."""
        return max(2 * CALIBRATION_MIN, db_size // 8)

    def _materialize(
        self, spec: GraphQuery, decision: PlanDecision, events: list
    ) -> tuple[EvaluationPlan, Evaluator]:
        evaluator = self._evaluator(
            spec, decision, events, self._pooled_evaluator
        )
        plan = EvaluationPlan(
            source=self._source(decision),
            cascade=self._monolithic_cascade(spec, decision, events),
            evaluator=evaluator,
            stage_labels=self._stage_labels(spec, decision),
        )
        return plan, evaluator

    # -- execution --------------------------------------------------------
    def run(self, spec: GraphQuery) -> BackendAnswer:
        spec.validate()
        if self._sharded:
            return self._run_sharded(spec)
        decision = self._decide(spec, len(self.database))
        events: list = []
        plan, evaluator = self._materialize(spec, decision, events)
        answer = run_plan(self.database, spec, plan, cache=self.cache)
        self._finish(spec, decision, events, answer, evaluator)
        return answer

    def _observed(self, spec: GraphQuery, decision: PlanDecision, stats):
        """Observed per-stage prune fractions, aligned with predictions."""
        observed: dict[str, float] = {}
        considered = max(1, stats.candidates_considered)
        survivors = max(1, considered - stats.pruned_by_batch)
        for name in decision.predicted:
            if name == "batch-prefilter":
                observed[name] = round(
                    stats.pruned_by_batch / considered, 4
                )
            else:
                observed[name] = round(
                    stats.pruned_by_stage.get(name, 0) / survivors, 4
                )
        return observed

    def _planner_payload(
        self,
        spec: GraphQuery,
        decision: PlanDecision,
        events: list,
        stats,
        evaluator_ran: str,
    ) -> dict:
        return {
            "backend": self.name,
            "summary": decision.summary,
            "source": decision.source,
            "stages": list(self._stage_labels(spec, decision)),
            "evaluator": evaluator_ran,
            "predicted": {
                name: round(value, 4)
                for name, value in decision.predicted.items()
            },
            "observed": self._observed(spec, decision, stats),
            "costs_ms": {
                label: round(seconds * 1000.0, 3)
                for label, seconds in sorted(decision.costs.items())
            },
            "reasons": list(decision.reasons),
            "replans": list(events),
            "profile_queries": self.profile.queries,
        }

    def _evaluator_ran(
        self, spec: GraphQuery, decision: PlanDecision, evaluator
    ) -> str:
        if spec.anytime:
            return "serial(anytime)"
        if isinstance(evaluator, AdaptiveEvaluator):
            return "serial→pooled" if evaluator.switched else "serial"
        return decision.evaluator

    def _finish(
        self,
        spec: GraphQuery,
        decision: PlanDecision,
        events: list,
        answer: BackendAnswer,
        evaluator,
    ) -> None:
        stats = answer.stats
        stats.planner = self._planner_payload(
            spec,
            decision,
            events,
            stats,
            self._evaluator_ran(spec, decision, evaluator),
        )
        self.profile.observe(
            spec.kind, stats, stage_names=_feedback_stages(decision, events)
        )

    # -- scatter path ------------------------------------------------------
    def _query_sharing(self, spec: GraphQuery, decision: PlanDecision):
        """Cross-shard bound sharing for pooled pruning shards (mirrors
        the sharded backend; ``None`` when pruning is off or nothing can
        reach the pool)."""
        if decision.stage is None or not self.planner.pool_usable(spec):
            return None
        from repro.engine.workers import BoundSharing

        if spec.kind in ("skyline", "skyband"):
            dims = len(resolved_measures(spec))
        else:
            dims = 1
        return BoundSharing.for_spec(spec, dims, workers=self.max_workers)

    def _run_sharded(self, spec: GraphQuery) -> BackendAnswer:
        database: ShardedGraphDatabase = self.database
        events: list = []
        # Pruning/batching is a global decision (the bound stage is one
        # shared instance — the cross-shard pruning channel); evaluators
        # are chosen per shard below.
        decision = self._decide(spec, len(database))
        shared_stage: Stage | None = None
        cascade: tuple = self._cache_stages()
        if decision.stage is not None:
            shared_stage = self._gated(
                spec,
                self._bound_stage(spec, decision),
                decision,
                events,
                calibration=self._calibration(len(database)),
            )
            cascade = (
                (lambda ctx, stage=shared_stage: stage),
            ) + self._cache_stages()
        labels = self._stage_labels(spec, decision)
        sharing = self._query_sharing(spec, decision)
        pooled_used: list = []
        per_shard_plans: list[dict] = []
        answers = []
        shard_stats: list = [None] * database.shard_count
        anytime_wall = None
        if spec.budget_ms is not None:
            anytime_wall = time.monotonic() + spec.budget_ms / 1000.0
        try:
            for index in range(database.shard_count):
                shard_db = database.shards[index]
                if not len(shard_db):
                    continue
                shard_decision = self._shard_decision(spec, len(shard_db))
                evaluator = self._evaluator(
                    spec,
                    shard_decision,
                    events,
                    lambda index=index: self._shard_pooled_evaluator(index),
                    shard=index,
                )
                if sharing is not None and not isinstance(
                    evaluator, SerialEvaluator
                ):
                    pooled = (
                        evaluator._pooled
                        if isinstance(evaluator, AdaptiveEvaluator)
                        else evaluator
                    )
                    pooled.sharing = sharing
                    pooled.matrix_source = (
                        lambda idx=index: self._scatter.shard_store(idx)
                    )
                    pooled_used.append(pooled)
                plan = EvaluationPlan(
                    source=self._scatter.shard_source(index),
                    cascade=cascade,
                    evaluator=evaluator,
                    stage_labels=labels,
                )
                shard_spec = spec
                if anytime_wall is not None:
                    remaining_ms = max(
                        1, int((anytime_wall - time.monotonic()) * 1000)
                    )
                    shard_spec = dataclasses.replace(
                        spec, budget_ms=remaining_ms
                    )
                answer = run_plan(
                    shard_db, shard_spec, plan, cache=self.cache
                )
                shard_stats[index] = answer.stats
                answers.append(answer)
                per_shard_plans.append(
                    {
                        "shard": index,
                        "size": len(shard_db),
                        "evaluator": self._evaluator_ran(
                            spec, shard_decision, evaluator
                        ),
                        "predicted_survivors": shard_decision.survivors,
                    }
                )
        finally:
            if sharing is not None:
                for pooled in pooled_used:
                    pooled.sharing = None
                sharing.release()
        stats = merged_stats(database, shard_stats)
        merged = merge_consumer(spec).merge(spec, answers, stats)
        payload = self._planner_payload(
            spec, decision, events, stats, "per-shard"
        )
        payload["source"] = f"scatter×{database.shard_count}"
        payload["summary"] = (
            f"scatter×{database.shard_count}"
            f"+{decision.stage or 'no-prune'}/per-shard"
        )
        payload["stages"] = list(labels) + [merge_consumer(spec).name]
        payload["per_shard"] = per_shard_plans
        stats.planner = payload
        self.profile.observe(
            spec.kind, stats, stage_names=_feedback_stages(decision, events)
        )
        return merged

    def _shard_decision(self, spec: GraphQuery, shard_size: int) -> PlanDecision:
        """Evaluator choice at shard granularity: the global decision's
        source/stage, re-costed for this shard's candidate count."""
        return self._decide(spec, shard_size)


register_backend(AutoBackend.name, AutoBackend)
