"""Process-pool execution backend: a pooled-evaluator plan configuration.

The expensive part of every query kind is the per-graph exact evaluation
(GED + MCS per pair); the selection step over the resulting vectors is
negligible. This backend pairs the engine's database-order candidate
source with a :class:`~repro.engine.workers.PooledEvaluator`, which fans
chunks of work out to the **persistent worker pool**
(:mod:`repro.engine.workers`) and runs the selection serially — so the
answer set is identical to ``memory`` by construction (and
property-tested to be). The database crosses the process boundary as a
shared-memory attachment written once per database object and kept
current by version-keyed row deltas; per-chunk tasks carry only graph
ids, and the long-lived workers keep their materialized payloads warm
across queries and sessions. With ``cache=``, cached pairs are served
before the fan-out and new vectors written back after it, so batching
and caching compose.

The pool machinery lives in :mod:`repro.engine.workers`;
:func:`shutdown_pool` is re-exported here for backward compatibility.
"""

from __future__ import annotations

from repro.db.database import GraphDatabase
from repro.api.spec import GraphQuery
from repro.api.backends import ExecutionBackend, register_backend
from repro.engine.evaluate import PooledEvaluator, shutdown_pool  # noqa: F401
from repro.engine.plan import DatabaseOrderSource, EvaluationPlan


class ParallelBackend(ExecutionBackend):
    """Exhaustive evaluation distributed over a process pool.

    Parameters
    ----------
    database:
        The target database.
    max_workers:
        Pool size (default: ``os.cpu_count()``).
    chunk_size:
        Graphs per task; ``None`` auto-sizes to ~4 chunks per worker so
        uneven per-pair costs still balance.
    cache:
        Optional shared pair cache consulted before the fan-out.
    """

    name = "parallel"

    def __init__(
        self,
        database: GraphDatabase,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        cache=None,
    ) -> None:
        super().__init__(database)
        self.cache = cache
        self._evaluator = PooledEvaluator(
            max_workers=max_workers, chunk_size=chunk_size
        )

    @property
    def max_workers(self) -> int:
        return self._evaluator.max_workers

    @property
    def chunk_size(self) -> int | None:
        return self._evaluator.chunk_size

    def _chunks(self) -> list[list]:
        """How the current database would be split into pool tasks."""
        return self._evaluator.chunk(list(self.database))

    def close(self) -> None:
        """Release this session's shared-memory attachment (pool stays
        warm for other sessions; :func:`shutdown_pool` stops it)."""
        self._evaluator.release()

    def build_plan(self, spec: GraphQuery) -> EvaluationPlan:
        return EvaluationPlan(
            source=DatabaseOrderSource(),
            cascade=self._cache_stages(),
            evaluator=self._evaluator,
            stage_labels=self._cache_labels(),
        )


register_backend(ParallelBackend.name, ParallelBackend)
