"""Process-pool execution backend: exact GCS evaluation fanned in chunks.

The expensive part of every query kind is the per-graph exact evaluation
(GED + MCS per pair); the selection step over the resulting vectors is
negligible. This backend ships chunks of ``(graph_id, graph)`` pairs to a
:class:`concurrent.futures.ProcessPoolExecutor`, evaluates them with the
same :class:`~repro.measures.base.PairContext` sharing as the serial
backends, and runs the selection serially — so the answer set is identical
to ``memory`` by construction (and property-tested to be).

Workers receive measure *specs* (registry names when possible), not live
objects, so nothing unpicklable crosses the process boundary in the common
case. Custom measure instances must be picklable to be used here.

The pool is shared process-wide and created lazily on first use (fork is
cheap on POSIX, but spawning per-query would still dwarf small queries);
:func:`shutdown_pool` tears it down, and an ``atexit`` hook does so at
interpreter exit.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import (
    DistanceMeasure,
    PairContext,
    measure_names,
    resolve_measures,
)
from repro.core.gcs import CompoundSimilarity
from repro.db.database import GraphDatabase
from repro.db.stats import PhaseTimer, QueryStats
from repro.api.spec import GraphQuery
from repro.api.backends import ExecutionBackend, register_backend

_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(max_workers: int) -> ProcessPoolExecutor:
    """The process-wide worker pool for ``max_workers``.

    Pools are cached per size so sessions with different worker counts
    coexist — tearing one down to resize would cancel in-flight work of
    unrelated sessions.
    """
    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = _POOLS[max_workers] = ProcessPoolExecutor(max_workers=max_workers)
    return pool


def shutdown_pool() -> None:
    """Tear down every shared worker pool (no-op when none started)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pool)


def _evaluate_chunk(
    pairs: list[tuple[int, LabeledGraph]],
    query: LabeledGraph,
    measure_specs: tuple[object, ...] | None,
) -> list[tuple[int, tuple[float, ...]]]:
    """Worker: exact measure vectors for one chunk of database graphs."""
    from repro.measures.base import default_measures

    measures = (
        default_measures()
        if measure_specs is None
        else resolve_measures(measure_specs)
    )
    out = []
    for graph_id, graph in pairs:
        context = PairContext(graph, query)
        out.append(
            (
                graph_id,
                tuple(m.distance(graph, query, context) for m in measures),
            )
        )
    return out


class ParallelBackend(ExecutionBackend):
    """Exhaustive evaluation distributed over a process pool.

    Parameters
    ----------
    database:
        The target database.
    max_workers:
        Pool size (default: ``os.cpu_count()``).
    chunk_size:
        Graphs per task; ``None`` auto-sizes to ~4 chunks per worker so
        uneven per-pair costs still balance.
    """

    name = "parallel"

    def __init__(
        self,
        database: GraphDatabase,
        max_workers: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(database)
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.chunk_size = chunk_size

    def _chunks(self) -> list[list[tuple[int, LabeledGraph]]]:
        pairs = list(self.database)
        if not pairs:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(pairs) // (self.max_workers * 4)))
        return [pairs[i : i + size] for i in range(0, len(pairs), size)]

    def _fan_out(
        self, spec: GraphQuery, measure_specs: tuple[object, ...] | None, stats: QueryStats
    ) -> dict[int, tuple[float, ...]]:
        """Exact vectors for every graph, evaluated across the pool."""
        values: dict[int, tuple[float, ...]] = {}
        with PhaseTimer(stats, "evaluate"):
            chunks = self._chunks()
            if not chunks:
                return values
            pool = _shared_pool(self.max_workers)
            futures = [
                pool.submit(_evaluate_chunk, chunk, spec.graph, measure_specs)
                for chunk in chunks
            ]
            for future in futures:
                for graph_id, vector in future.result():
                    values[graph_id] = vector
            stats.candidates_considered = len(values)
            stats.exact_evaluations = len(values)
        return dict(sorted(values.items()))

    def _vector_answer(
        self, spec: GraphQuery, measures: tuple[DistanceMeasure, ...]
    ) -> tuple[dict[int, CompoundSimilarity], QueryStats]:
        stats = QueryStats(database_size=len(self.database))
        names = measure_names(measures)
        raw = self._fan_out(spec, spec.measures, stats)
        vectors = {
            graph_id: CompoundSimilarity(values=values, measures=names)
            for graph_id, values in raw.items()
        }
        return vectors, stats

    def _skyline(self, spec, measures):
        vectors, stats = self._vector_answer(spec, measures)
        return self._finish_vectors(spec, vectors, stats)

    _skyband = _skyline  # same fan-out evaluation; _finish_vectors branches

    def _single_distances(
        self, spec: GraphQuery, measure: DistanceMeasure, stats: QueryStats
    ) -> dict[int, float]:
        spec_for_measure = (
            (spec.measure,) if spec.measure is not None else (measure,)
        )
        raw = self._fan_out(spec, spec_for_measure, stats)
        return {graph_id: values[0] for graph_id, values in raw.items()}

    def _topk(self, spec, measure):
        stats = QueryStats(database_size=len(self.database))
        distances = self._single_distances(spec, measure, stats)
        return self._finish_distances(spec, distances, stats)

    _threshold = _topk  # same fan-out evaluation; _finish_distances branches


register_backend(ParallelBackend.name, ParallelBackend)
