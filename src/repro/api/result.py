"""Unified result sets for the declarative query API.

:class:`ResultSet` replaces the three divergent result shapes the entry
points used to return (:class:`~repro.core.gss.SkylineResult`,
:class:`~repro.core.pipeline.QueryAnswer`,
:class:`~repro.db.executor.ExecutionResult`): one object carrying the
answer graphs *and* their ids, the exact GCS vectors (or single-measure
distances) of everything that was evaluated, the execution statistics, the
diversity refinement when requested, and renderers (``to_rows``,
``to_json``, ``explain``) every caller — library, CLI, benches — shares.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.graph.labeled_graph import LabeledGraph
from repro.core.gcs import CompoundSimilarity
from repro.core.diversity import DiversityResult
from repro.db.database import GraphDatabase
from repro.db.stats import QueryStats
from repro.api.spec import GraphQuery


@dataclass(frozen=True)
class QueryPlan:
    """How a session decided to execute a spec (returned by ``plan()``)."""

    backend: str
    kind: str
    database_size: int
    measures: tuple[str, ...]
    uses_index: bool
    workers: int = 1
    #: Cascade stage labels of the engine plan (empty = straight to exact).
    stages: tuple[str, ...] = ()
    #: Shard count of a scatter-gather backend (1 = monolithic).
    shards: int = 1

    def describe(self) -> str:
        """One-line human-readable plan."""
        pruning = "index lower-bound pruning" if self.uses_index else "full scan"
        fan_out = f", {self.workers} workers" if self.workers > 1 else ""
        scatter = f", {self.shards} shards" if self.shards > 1 else ""
        cascade = f"; cascade: {' → '.join(self.stages)}" if self.stages else ""
        return (
            f"{self.kind} over {self.database_size} graphs via "
            f"{self.backend!r} ({pruning}{fan_out}{scatter}; "
            f"measures: {', '.join(self.measures)}{cascade})"
        )


@dataclass
class ResultSet:
    """Outcome of one executed :class:`~repro.api.spec.GraphQuery`.

    Attributes
    ----------
    spec:
        The query that produced this result.
    plan:
        The execution plan the session chose.
    ids:
        Answer ids (sorted for skyline/skyband, ranked for topk/threshold),
        after refinement and ``limit`` were applied.
    evaluated_ids:
        Every id whose exact vector/distance was computed (pruned ids are
        absent).
    vectors:
        Exact GCS vectors keyed by id (skyline/skyband kinds).
    distances:
        Exact single-measure distances keyed by id (topk/threshold kinds).
    stats:
        Execution counters and phase timings.
    refinement:
        Section-VII diversity refinement, when the spec requested one and
        the answer was large enough to need it.
    cache_info:
        Pair-cache counters for *this* query (``hits``/``misses`` deltas
        of the backend's shared cache, plus ``served`` — candidates whose
        exact vector the cache replaced — and the query-hash memo's
        ``pinned``/``pin_limit`` occupancy); ``None`` when the backend
        runs uncached.
    intervals:
        Anytime (budgeted) runs only: certified ``[lower, upper]``
        :class:`~repro.graph.budget.Interval` vectors per candidate that
        survived the cascade. Settled intervals are exact values; open
        ones bracket the true distance. ``None`` for exact runs.
    approximate:
        True when the budget expired before the answer was certified —
        the answer is then the best-effort selection over certified
        upper bounds; reported vectors/distances of unsettled candidates
        are their upper bounds.
    """

    spec: GraphQuery
    plan: QueryPlan
    database: GraphDatabase = field(repr=False)
    ids: list[int] = field(default_factory=list)
    evaluated_ids: list[int] = field(default_factory=list)
    vectors: dict[int, CompoundSimilarity] = field(default_factory=dict)
    distances: dict[int, float] | None = None
    stats: QueryStats = field(default_factory=QueryStats)
    refinement: DiversityResult | None = None
    cache_info: dict[str, int] | None = None
    intervals: dict[int, tuple] | None = None
    approximate: bool = False

    # -- answer access --------------------------------------------------
    @property
    def graphs(self) -> list[LabeledGraph]:
        """The answer graphs, aligned with :attr:`ids`."""
        return [self.database.get(graph_id) for graph_id in self.ids]

    @property
    def names(self) -> list[str]:
        """Answer graph names (``#<id>`` fallback), aligned with ids."""
        return [
            self.database.get(graph_id).name or f"#{graph_id}"
            for graph_id in self.ids
        ]

    @property
    def measures(self) -> tuple[str, ...]:
        """Names of the evaluated dimensions."""
        return self.plan.measures

    def vector(self, graph_id: int) -> CompoundSimilarity:
        """The exact GCS vector of an evaluated graph."""
        return self.vectors[graph_id]

    def distance(self, graph_id: int) -> float:
        """The exact single-measure distance of an evaluated graph."""
        if self.distances is None:
            raise KeyError("this result carries vectors, not distances")
        return self.distances[graph_id]

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[LabeledGraph]:
        return iter(self.graphs)

    def __contains__(self, graph: object) -> bool:
        # Structural equality, not identity: sessions opened over plain
        # graph sequences store defensive copies, so the caller's objects
        # are never the stored ones.
        return any(member is graph or member == graph for member in self.graphs)

    # -- renderers -------------------------------------------------------
    def to_rows(self) -> list[dict[str, object]]:
        """Table-III-style rows over everything evaluated, in id order.

        Vector kinds yield one column per measure plus ``in_answer``;
        distance kinds yield the measure column plus ``rank`` (``None``
        for evaluated graphs outside the answer).
        """
        member = set(self.ids)
        rows: list[dict[str, object]] = []
        if self.distances is not None:
            rank_of = {graph_id: rank for rank, graph_id in enumerate(self.ids, 1)}
            for graph_id in sorted(self.evaluated_ids):
                rows.append({
                    "id": graph_id,
                    "graph": self.database.get(graph_id).name or f"#{graph_id}",
                    self.measures[0]: self.distances[graph_id],
                    "rank": rank_of.get(graph_id),
                    "in_answer": graph_id in member,
                })
            return rows
        for graph_id in sorted(self.evaluated_ids):
            row: dict[str, object] = {
                "id": graph_id,
                "graph": self.database.get(graph_id).name or f"#{graph_id}",
            }
            row.update(self.vectors[graph_id].as_dict())
            row["in_answer"] = graph_id in member
            rows.append(row)
        return rows

    def to_dict(self) -> dict[str, object]:
        """Plain-data payload of the whole result (JSON-representable)."""
        payload: dict[str, object] = {
            "kind": self.spec.kind,
            "backend": self.plan.backend,
            "measures": list(self.measures),
            "ids": list(self.ids),
            "answer": self.names,
            "rows": self.to_rows(),
            "stats": {
                "database_size": self.stats.database_size,
                "candidates_considered": self.stats.candidates_considered,
                "exact_evaluations": self.stats.exact_evaluations,
                "pruned_by_index": self.stats.pruned_by_index,
                "pruned_by_batch": self.stats.pruned_by_batch,
                "served_from_cache": self.stats.served_from_cache,
                "pruned_by_stage": dict(self.stats.pruned_by_stage),
                "source_ms": round(self.stats.source_ms, 3),
                "cascade_ms": round(self.stats.cascade_ms, 3),
                "evaluate_ms": round(self.stats.evaluate_ms, 3),
            },
        }
        if self.stats.planner is not None:
            payload["stats"]["planner"] = {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self.stats.planner.items()
            }
        if self.stats.per_shard is not None:
            payload["stats"]["per_shard"] = [
                dict(row) for row in self.stats.per_shard
            ]
        if self.stats.pool is not None:
            payload["stats"]["pool"] = {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self.stats.pool.items()
            }
        if self.stats.anytime is not None:
            payload["stats"]["anytime"] = dict(self.stats.anytime)
        if self.intervals is not None:
            payload["approximate"] = self.approximate
            payload["intervals"] = {
                str(graph_id): [interval.to_wire() for interval in intervals]
                for graph_id, intervals in sorted(self.intervals.items())
            }
        if self.cache_info is not None:
            payload["cache"] = dict(self.cache_info)
        if self.refinement is not None:
            payload["refined"] = [
                graph.name or "?" for graph in self.refinement.subset
            ]
        return payload

    def to_json(self, **dumps_kwargs: object) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    def explain(self) -> str:
        """Human-readable account of the plan, the work, and the answer."""
        lines = [self.plan.describe(), self.stats.summary()]
        if self.stats.planner is not None:
            planner = self.stats.planner
            lines.append(
                f"planner: chose {planner.get('summary', 'auto')} "
                f"(profile: {planner.get('profile_queries', 0)} queries "
                "observed)"
            )
            predicted = planner.get("predicted") or {}
            observed = planner.get("observed") or {}
            for stage in predicted:
                lines.append(
                    f"  stage {stage}: predicted {predicted[stage]:.1%} "
                    f"prune, observed {observed.get(stage, 0.0):.1%}"
                )
            costs = planner.get("costs_ms") or {}
            if costs:
                ranked = sorted(costs.items(), key=lambda item: item[1])
                lines.append(
                    "  considered: "
                    + "  ".join(
                        f"{label}={ms:.1f}ms" for label, ms in ranked
                    )
                )
            for row in planner.get("per_shard") or []:
                lines.append(
                    "  shard {shard}: evaluator={evaluator} "
                    "predicted_survivors={predicted_survivors} "
                    "(size {size})".format(**row)
                )
            for event in planner.get("replans") or []:
                if event.get("event") == "drop-stage":
                    lines.append(
                        f"  re-plan: dropped stage {event['stage']} after "
                        f"{event['after_candidates']} candidates "
                        f"(predicted {event['predicted']:.1%}, observed "
                        f"{event['observed']:.1%})"
                    )
                elif event.get("event") == "switch-evaluator":
                    lines.append(
                        f"  re-plan: switched {event['from']} → "
                        f"{event['to']} after {event['after_pairs']} pairs "
                        f"(measured {event['pair_ms']:.2f}ms/pair, "
                        f"~{event['expected_remaining']} remaining)"
                    )
                else:  # pragma: no cover - future event kinds
                    lines.append(f"  re-plan: {event}")
            for reason in planner.get("reasons") or []:
                lines.append(f"  note: {reason}")
        if self.stats.pruned_by_stage:
            breakdown = ", ".join(
                f"{name}: {count}"
                for name, count in sorted(self.stats.pruned_by_stage.items())
            )
            lines.append(f"pruned by stage: {breakdown}")
        lines.append(
            f"phases: source={self.stats.source_ms:.1f}ms "
            f"cascade={self.stats.cascade_ms:.1f}ms "
            f"evaluate={self.stats.evaluate_ms:.1f}ms"
        )
        if self.intervals is not None:
            open_count = sum(
                1
                for intervals in self.intervals.values()
                if any(not interval.settled for interval in intervals)
            )
            status = (
                "approximate — budget expired with straddling intervals"
                if self.approximate
                else "certified — intervals decide the exact answer"
            )
            lines.append(
                f"anytime: {status} "
                f"({open_count}/{len(self.intervals)} intervals left open)"
            )
        if self.stats.per_shard is not None:
            for row in self.stats.per_shard:
                line = (
                    "  shard {shard}: size={size} candidates={candidates} "
                    "pruned={pruned} evaluated={evaluated} "
                    "served={served}".format(**row)
                )
                if "chunks" in row:
                    attach = ",".join(
                        f"{kind}:{count}"
                        for kind, count in sorted(row.get("attach", {}).items())
                    )
                    line += (
                        f" pool(attach={attach or 'none'}"
                        f" chunks={row['chunks']} waves={row.get('waves', 0)}"
                        f" frontier_pruned={row.get('frontier_pruned', 0)}"
                        f" published={row.get('published', 0)})"
                    )
                lines.append(line)
        if self.stats.pool is not None:
            pool = self.stats.pool
            attach = ",".join(
                f"{kind}:{count}"
                for kind, count in sorted(pool.get("attach", {}).items())
            )
            lines.append(
                f"worker pool: workers={pool.get('workers', 0)} "
                f"attach={attach or 'none'} chunks={pool.get('chunks', 0)} "
                f"waves={pool.get('waves', 0)} "
                f"frontier_pruned={pool.get('frontier_pruned', 0)} "
                f"published={pool.get('published', 0)} "
                f"respawns={pool.get('respawns', 0)}"
            )
        if self.cache_info is not None:
            pins = ""
            if "pinned" in self.cache_info:
                pins = " pinned={pinned}/{pin_limit}".format(**self.cache_info)
            lines.append(
                "pair cache: hits={hits} misses={misses} served={served}".format(
                    **self.cache_info
                )
                + pins
            )
        if self.spec.kind in ("topk", "threshold") and self.stats.pruned_by_batch:
            lines.append(
                f"batch pre-filter: {self.stats.pruned_by_batch} candidates "
                "removed in one vectorized pass"
            )
        if self.spec.kind in ("skyline", "skyband") and self.vectors:
            member = set(self.ids)
            for graph_id in sorted(self.evaluated_ids):
                vector = self.vectors[graph_id]
                name = self.database.get(graph_id).name or f"#{graph_id}"
                values = ", ".join(
                    f"{m}={v:.3g}" for m, v in zip(vector.measures, vector.values)
                )
                status = "in answer" if graph_id in member else "dominated"
                lines.append(f"  {name} ({values}) — {status}")
            pruned = self.stats.pruned_by_index
            if pruned:
                batched = (
                    f", {self.stats.pruned_by_batch} in one batched pass"
                    if self.stats.pruned_by_batch
                    else ""
                )
                lines.append(
                    f"  (+{pruned} candidates pruned by index lower bounds "
                    f"without exact evaluation{batched})"
                )
        if self.refinement is not None:
            names = ", ".join(g.name or "?" for g in self.refinement.subset)
            lines.append(
                f"refined to {self.refinement.k} diverse representatives: {names}"
            )
        return "\n".join(lines)
