"""Declarative query layer: one front door, pluggable execution backends.

The unified API the rest of the library routes through:

* :class:`GraphQuery` / :class:`Query` — immutable query specs with a
  fluent builder and a JSON wire format;
* :func:`connect` / :class:`Session` — open a database (or plain graph
  sequence, or saved JSON file) against a named backend and execute any
  spec;
* :class:`ResultSet` — the single result shape (graphs + vectors + stats
  + ``explain()`` + ``to_rows()``/``to_json()``);
* :class:`ExecutionBackend` — the strategy ABC behind
  :func:`register_backend`; shipped backends are ``memory`` (serial
  exhaustive), ``indexed`` (feature-index lower-bound pruning) and
  ``parallel`` (process-pool fan-out) — all thin plan configurations
  over the staged engine (:mod:`repro.engine`), all accepting a shared
  ``cache=`` (:class:`repro.db.cache.PairCache`);
* :class:`LiveView` — ``Session.watch(query)``: a materialized skyline
  kept incrementally correct under database mutation.

The legacy entry points (:class:`repro.core.SimilarityQueryEngine`,
:class:`repro.db.SkylineExecutor`) are thin deprecated shims over this
layer.
"""

from repro.api.spec import (
    GraphQuery,
    Query,
    QUERY_KINDS,
    REFINE_METHODS,
)
from repro.api.backends import (
    BackendAnswer,
    ExecutionBackend,
    IndexedBackend,
    MemoryBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.api.parallel import ParallelBackend, shutdown_pool
from repro.api.result import QueryPlan, ResultSet
from repro.api.session import Session, connect
from repro.engine.views import LiveView

__all__ = [
    "GraphQuery",
    "Query",
    "QUERY_KINDS",
    "REFINE_METHODS",
    "BackendAnswer",
    "ExecutionBackend",
    "MemoryBackend",
    "IndexedBackend",
    "ParallelBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "shutdown_pool",
    "QueryPlan",
    "ResultSet",
    "Session",
    "connect",
    "LiveView",
]
