"""Pluggable execution backends behind the declarative query API.

A backend knows how to answer any :class:`~repro.api.spec.GraphQuery`
against a :class:`~repro.db.database.GraphDatabase`. All backends return
identical answer *sets* (property-tested) and differ only in how much work
they do:

* ``memory``  — serial exhaustive evaluation, one exact GCS vector per
  database graph (the reference semantics);
* ``indexed`` — feature-index lower-bound pruning: candidates whose
  optimistic vector is already dominated never reach the exact solvers;
* ``parallel`` — exhaustive evaluation fanned across a process pool in
  chunks (:mod:`repro.api.parallel`).

Backends are registered by name (:func:`register_backend`) so sessions can
be opened with ``repro.connect(db, backend="indexed")`` and new strategies
(e.g. remote or cached executors) can plug in without touching callers.
"""

from __future__ import annotations

import abc
from bisect import insort
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.graph.features import GraphFeatures
from repro.measures.base import (
    DistanceMeasure,
    PairContext,
    default_measures,
    get_measure,
    measure_names,
    resolve_measures,
)
from repro.core.gcs import CompoundSimilarity
from repro.db.database import GraphDatabase
from repro.db.index import FeatureIndex
from repro.db.stats import PhaseTimer, QueryStats
from repro.skyline import skyline as vector_skyline
from repro.skyline.skyband import k_skyband
from repro.skyline.utils import dominates
from repro.api.spec import GraphQuery


@dataclass
class BackendAnswer:
    """Normalized backend output, independent of query kind.

    ``ids`` is the answer set (sorted for skyline/skyband, ranked for
    topk/threshold); ``vectors`` holds the exact GCS vectors of every
    evaluated graph (pruned ids absent); ``distances`` carries the
    single-measure values for topk/threshold kinds.
    """

    ids: list[int]
    evaluated_ids: list[int]
    vectors: dict[int, CompoundSimilarity]
    distances: dict[int, float] | None
    stats: QueryStats = field(default_factory=QueryStats)


class ExecutionBackend(abc.ABC):
    """Strategy interface: executes validated query specs over a database."""

    #: Registry key; subclasses must override.
    name: str = "abstract"

    def __init__(self, database: GraphDatabase) -> None:
        self.database = database

    def run(self, spec: GraphQuery) -> BackendAnswer:
        """Answer ``spec`` (validated first) against the bound database."""
        spec.validate()
        measures = self._resolve_measures(spec)
        if spec.kind == "skyline":
            return self._skyline(spec, measures)
        if spec.kind == "skyband":
            return self._skyband(spec, measures)
        if spec.kind == "topk":
            return self._topk(spec, self._single_measure(spec, measures))
        return self._threshold(spec, self._single_measure(spec, measures))

    def close(self) -> None:
        """Release backend resources (pools, sockets); default no-op."""

    # -- helpers shared by implementations -----------------------------
    @staticmethod
    def _resolve_measures(spec: GraphQuery) -> tuple[DistanceMeasure, ...]:
        if spec.measures is None:
            return default_measures()
        return resolve_measures(spec.measures)

    @staticmethod
    def _single_measure(
        spec: GraphQuery, measures: tuple[DistanceMeasure, ...]
    ) -> DistanceMeasure:
        """The measure of a topk/threshold query (first dimension default)."""
        if spec.measure is not None:
            return get_measure(spec.measure)
        return measures[0]

    def _finish_vectors(
        self,
        spec: GraphQuery,
        vectors: dict[int, CompoundSimilarity],
        stats: QueryStats,
    ) -> BackendAnswer:
        """Shared selection step: skyline or k-skyband over exact vectors.

        Every backend funnels through this (and :meth:`_finish_distances`),
        so answer-set semantics — algorithm choice, tolerance, tie-breaks —
        are defined exactly once and the backend-parity contract cannot
        drift per backend.
        """
        with PhaseTimer(stats, "skyline"):
            ids = list(vectors)
            values = [vectors[i].values for i in ids]
            if spec.kind == "skyband":
                positions = k_skyband(values, spec.k, tolerance=spec.tolerance)
            else:
                positions = vector_skyline(
                    values, algorithm=spec.algorithm, tolerance=spec.tolerance
                )
            answer = sorted(ids[p] for p in positions)
        stats.skyline_size = len(answer)
        return BackendAnswer(answer, ids, vectors, None, stats)

    def _finish_distances(
        self,
        spec: GraphQuery,
        distances: dict[int, float],
        stats: QueryStats,
    ) -> BackendAnswer:
        """Shared ranking step: top-k cut or threshold filter, ties by id."""
        if spec.kind == "topk":
            answer = sorted(distances, key=lambda i: (distances[i], i))[: spec.k]
        else:
            answer = [i for i in distances if distances[i] <= spec.threshold]
            answer.sort(key=lambda i: (distances[i], i))
        return BackendAnswer(answer, list(distances), {}, distances, stats)

    @abc.abstractmethod
    def _skyline(
        self, spec: GraphQuery, measures: tuple[DistanceMeasure, ...]
    ) -> BackendAnswer:
        """Pareto-optimal ids under the GCS vector."""

    @abc.abstractmethod
    def _skyband(
        self, spec: GraphQuery, measures: tuple[DistanceMeasure, ...]
    ) -> BackendAnswer:
        """Ids dominated by fewer than ``spec.k`` graphs."""

    @abc.abstractmethod
    def _topk(self, spec: GraphQuery, measure: DistanceMeasure) -> BackendAnswer:
        """The ``spec.k`` closest ids under one measure (ties by id)."""

    @abc.abstractmethod
    def _threshold(self, spec: GraphQuery, measure: DistanceMeasure) -> BackendAnswer:
        """Ids within ``spec.threshold`` under one measure, nearest first."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self.database!r}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(name: str, backend: type[ExecutionBackend]) -> None:
    """Register a backend class under ``name`` (overwrites silently)."""
    _BACKENDS[name] = backend


def available_backends() -> list[str]:
    """Names of every registered execution backend."""
    return sorted(_BACKENDS)


def create_backend(
    name: str, database: GraphDatabase, **options: object
) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        backend = _BACKENDS[name]
    except KeyError:
        raise QueryError(
            f"unknown backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return backend(database, **options)


# ----------------------------------------------------------------------
# memory — serial exhaustive evaluation (reference semantics)
# ----------------------------------------------------------------------
class MemoryBackend(ExecutionBackend):
    """Evaluates every database graph exactly, in insertion order."""

    name = "memory"

    def _all_vectors(
        self, spec: GraphQuery, measures: tuple[DistanceMeasure, ...], stats: QueryStats
    ) -> dict[int, CompoundSimilarity]:
        names = measure_names(measures)
        vectors: dict[int, CompoundSimilarity] = {}
        with PhaseTimer(stats, "evaluate"):
            for graph_id, graph in self.database:
                stats.candidates_considered += 1
                context = PairContext(graph, spec.graph)
                values = tuple(
                    measure.distance(graph, spec.graph, context)
                    for measure in measures
                )
                vectors[graph_id] = CompoundSimilarity(values=values, measures=names)
                stats.exact_evaluations += 1
        return vectors

    def _skyline(self, spec, measures):
        stats = QueryStats(database_size=len(self.database))
        vectors = self._all_vectors(spec, measures, stats)
        return self._finish_vectors(spec, vectors, stats)

    _skyband = _skyline  # same exhaustive evaluation; _finish_vectors branches

    def _single_distances(
        self, spec: GraphQuery, measure: DistanceMeasure, stats: QueryStats
    ) -> dict[int, float]:
        distances: dict[int, float] = {}
        with PhaseTimer(stats, "evaluate"):
            for graph_id, graph in self.database:
                stats.candidates_considered += 1
                distances[graph_id] = measure.distance(
                    graph, spec.graph, PairContext(graph, spec.graph)
                )
                stats.exact_evaluations += 1
        return distances

    def _topk(self, spec, measure):
        stats = QueryStats(database_size=len(self.database))
        distances = self._single_distances(spec, measure, stats)
        return self._finish_distances(spec, distances, stats)

    _threshold = _topk  # same exhaustive evaluation; _finish_distances branches


# ----------------------------------------------------------------------
# indexed — feature-index lower-bound pruning
# ----------------------------------------------------------------------
class IndexedBackend(ExecutionBackend):
    """Prunes never-in-the-answer candidates via sound index lower bounds.

    The pruning argument (see :mod:`repro.db.executor`): optimistic vectors
    are componentwise ≤ the exact vectors, so a candidate whose optimistic
    vector is already Pareto-dominated by an exact vector can never enter
    the skyline. The index is *self-healing*: database mutations bump
    :attr:`GraphDatabase.version`, and every query checks the recorded
    version before trusting the index — no manual ``refresh_index()``
    required.
    """

    name = "indexed"

    def __init__(
        self,
        database: GraphDatabase,
        use_index: bool = True,
        cache: "QueryCache | None" = None,
    ) -> None:
        super().__init__(database)
        self.use_index = use_index
        self.cache = cache
        self.index = FeatureIndex()
        self._index_version = -1
        self._ensure_index()

    # -- index maintenance ---------------------------------------------
    def _ensure_index(self) -> None:
        """Rebuild the feature index iff the database changed under us."""
        if self._index_version == self.database.version:
            return
        self.index = FeatureIndex()
        for entry in self.database.entries():
            self.index.add(entry.graph_id, entry.features)
        self._index_version = self.database.version

    def refresh_index(self) -> None:
        """Force an index rebuild (kept for the legacy executor API)."""
        self._index_version = -1
        self._ensure_index()

    def _candidate_order(
        self, query_features: GraphFeatures, measures: tuple[DistanceMeasure, ...]
    ) -> list[tuple[int, tuple[float, ...]]]:
        """(id, optimistic vector) pairs, most promising candidates first."""
        order = []
        for graph_id in self.database.ids():
            optimistic = self.index.optimistic_vector(
                graph_id, query_features, measures
            )
            order.append((graph_id, optimistic))
        order.sort(key=lambda item: (sum(item[1]), item[0]))
        return order

    def _evaluate_pair(
        self,
        graph_id: int,
        spec: GraphQuery,
        measures: tuple[DistanceMeasure, ...],
        names: tuple[str, ...],
    ) -> tuple[tuple[float, ...], bool]:
        """Exact GCS vector of (graph_id, query); True when cache-served."""
        if self.cache is not None:
            query_hash = self.cache.query_hash(spec.graph)
            cached = self.cache.get(graph_id, query_hash, names)
            if cached is not None:
                return cached, True
        graph = self.database.get(graph_id)
        context = PairContext(graph, spec.graph)
        values = tuple(
            measure.distance(graph, spec.graph, context) for measure in measures
        )
        if self.cache is not None:
            self.cache.put(graph_id, query_hash, names, values)
        return values, False

    @staticmethod
    def _has_n_dominators(
        exact_vectors: list[tuple[float, ...]],
        optimistic: tuple[float, ...],
        tolerance: float,
        n: int,
    ) -> bool:
        """True when ≥ ``n`` exact vectors dominate the optimistic bound."""
        count = 0
        for vector in exact_vectors:
            if dominates(vector, optimistic, tolerance):
                count += 1
                if count >= n:
                    return True
        return False

    def _pruned_vectors(
        self,
        spec: GraphQuery,
        measures: tuple[DistanceMeasure, ...],
        prune_limit: int,
        stats: QueryStats,
    ) -> dict[int, CompoundSimilarity]:
        """Exact vectors of the candidates that survive bound pruning.

        ``prune_limit`` is 1 for the skyline and ``k`` for the k-skyband:
        a candidate whose optimistic vector has ≥ ``prune_limit`` exact
        dominators is dominated by at least that many graphs, and by
        transitivity so is anything it would have dominated — skipping it
        cannot change membership.
        """
        names = measure_names(measures)
        query_features = GraphFeatures.of(spec.graph)
        with PhaseTimer(stats, "bounds"):
            order = self._candidate_order(query_features, measures)
        vectors: dict[int, CompoundSimilarity] = {}
        exact_vectors: list[tuple[float, ...]] = []
        with PhaseTimer(stats, "evaluate"):
            for graph_id, optimistic in order:
                stats.candidates_considered += 1
                if self.use_index and self._has_n_dominators(
                    exact_vectors, optimistic, spec.tolerance, prune_limit
                ):
                    stats.pruned_by_index += 1
                    continue
                values, from_cache = self._evaluate_pair(
                    graph_id, spec, measures, names
                )
                vectors[graph_id] = CompoundSimilarity(values=values, measures=names)
                exact_vectors.append(values)
                if not from_cache:
                    stats.exact_evaluations += 1
        return vectors

    # -- query kinds ----------------------------------------------------
    def _skyline(self, spec, measures):
        self._ensure_index()
        stats = QueryStats(database_size=len(self.database))
        vectors = self._pruned_vectors(spec, measures, 1, stats)
        return self._finish_vectors(spec, vectors, stats)

    def _skyband(self, spec, measures):
        self._ensure_index()
        stats = QueryStats(database_size=len(self.database))
        vectors = self._pruned_vectors(spec, measures, spec.k, stats)
        return self._finish_vectors(spec, vectors, stats)

    def _topk(self, spec, measure):
        """Classic bound-based pruning: candidates are visited in ascending
        lower-bound order; once ``k`` exact distances are known, any
        candidate whose lower bound exceeds the current k-th best distance
        can be skipped, and because bounds are sorted the scan stops at the
        first such candidate. The frontier is a sorted list maintained with
        ``bisect.insort`` — no re-sort per insertion."""
        self._ensure_index()
        stats = QueryStats(database_size=len(self.database))
        query_features = GraphFeatures.of(spec.graph)
        with PhaseTimer(stats, "bounds"):
            bounded = sorted(
                (
                    self.index.optimistic_vector(
                        graph_id, query_features, (measure,)
                    )[0],
                    graph_id,
                )
                for graph_id in self.database.ids()
            )
        best: list[tuple[float, int]] = []
        distances: dict[int, float] = {}
        with PhaseTimer(stats, "evaluate"):
            for lower_bound, graph_id in bounded:
                if self.use_index and len(best) >= spec.k and lower_bound > best[-1][0]:
                    # Every later candidate has an even larger bound; count
                    # the whole tail as considered-and-pruned.
                    remaining = len(bounded) - len(distances)
                    stats.candidates_considered += remaining
                    stats.pruned_by_index += remaining
                    break
                stats.candidates_considered += 1
                graph = self.database.get(graph_id)
                distance = measure.distance(
                    graph, spec.graph, PairContext(graph, spec.graph)
                )
                stats.exact_evaluations += 1
                distances[graph_id] = distance
                insort(best, (distance, graph_id))
                del best[spec.k :]
        return self._finish_distances(spec, distances, stats)

    def _threshold(self, spec, measure):
        self._ensure_index()
        stats = QueryStats(database_size=len(self.database))
        query_features = GraphFeatures.of(spec.graph)
        with PhaseTimer(stats, "bounds"):
            if self.use_index:
                candidates = self.index.threshold_candidates(
                    query_features, measure, spec.threshold
                )
            else:
                candidates = self.database.ids()
        stats.candidates_considered = len(self.database)
        stats.pruned_by_index = len(self.database) - len(candidates)
        distances: dict[int, float] = {}
        with PhaseTimer(stats, "evaluate"):
            for graph_id in candidates:
                graph = self.database.get(graph_id)
                distances[graph_id] = measure.distance(
                    graph, spec.graph, PairContext(graph, spec.graph)
                )
                stats.exact_evaluations += 1
        return self._finish_distances(spec, distances, stats)


register_backend(MemoryBackend.name, MemoryBackend)
register_backend(IndexedBackend.name, IndexedBackend)
