"""Pluggable execution backends: thin plan configurations over the engine.

A backend knows how to answer any :class:`~repro.api.spec.GraphQuery`
against a :class:`~repro.db.database.GraphDatabase`. Since the staged
engine refactor, no backend owns a candidate loop: each one merely
configures an :class:`~repro.engine.plan.EvaluationPlan` — candidate
source, pruning cascade, evaluator — and :func:`repro.engine.run_plan`
executes it. All backends return identical answer *sets*
(property-tested) and differ only in how much work they do:

* ``memory``  — database-order source, empty cascade, serial evaluator
  (the reference semantics);
* ``indexed`` — bound-ordered source, :func:`~repro.engine.bound_pruning`
  cascade stage: candidates whose optimistic vector is already dominated
  never reach the exact solvers;
* ``parallel`` — database-order source, chunked process-pool evaluator
  (:class:`~repro.engine.PooledEvaluator`);
* ``vectorized`` (when NumPy is installed) — :class:`repro.index.
  IndexedSource` over an incrementally-maintained packed feature matrix:
  optimistic vectors for the whole database in one batched kernel call,
  VP-tree pre-filtering for threshold queries, and the batched Pareto
  stage in the cascade.

Every backend accepts ``cache=`` (a :class:`~repro.db.cache.PairCache`
or legacy :class:`~repro.db.cache.QueryCache`), which appends the
cached-pairs cascade stage — pruning, caching and batching compose
instead of living in per-backend code paths.

Backends are registered by name (:func:`register_backend`) so sessions
can be opened with ``repro.connect(db, backend="indexed")`` and new
strategies plug in without touching callers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.measures.base import DistanceMeasure
from repro.core.gcs import CompoundSimilarity
from repro.db.database import GraphDatabase
from repro.db.index import FeatureIndex
from repro.db.stats import QueryStats
from repro.api.spec import GraphQuery
from repro.engine.core import resolved_measures, run_plan, single_measure
from repro.engine.evaluate import SerialEvaluator
from repro.engine.plan import (
    BoundOrderedSource,
    CachedPairStage,
    DatabaseOrderSource,
    EvaluationPlan,
    ParetoPruneStage,
    RankBoundStage,
    ThresholdBoundStage,
    bound_pruning,
    cached_pairs,
)

#: Display label of the bound-pruning stage per query kind (mirrors the
#: dispatch in :func:`repro.engine.plan.bound_pruning`).
_BOUND_STAGE_LABELS = {
    "skyline": ParetoPruneStage.name,
    "skyband": ParetoPruneStage.name,
    "topk": RankBoundStage.name,
    "threshold": ThresholdBoundStage.name,
}


@dataclass
class BackendAnswer:
    """Normalized backend output, independent of query kind.

    ``ids`` is the answer set (sorted for skyline/skyband, ranked for
    topk/threshold); ``vectors`` holds the exact GCS vectors of every
    evaluated graph (pruned ids absent); ``distances`` carries the
    single-measure values for topk/threshold kinds; ``pruned_ids`` are
    the candidates a cascade stage proved irrelevant (never evaluated).

    Anytime (budgeted) runs additionally set ``intervals`` — certified
    ``[lower, upper]`` :class:`~repro.graph.budget.Interval` vectors per
    candidate that survived the cascade — and ``approximate``, true when
    the budget expired with straddling intervals left, i.e. the answer is
    best-effort rather than certified equal to the exhaustive oracle's.
    """

    ids: list[int]
    evaluated_ids: list[int]
    vectors: dict[int, CompoundSimilarity]
    distances: dict[int, float] | None
    stats: QueryStats = field(default_factory=QueryStats)
    pruned_ids: list[int] = field(default_factory=list)
    intervals: dict[int, tuple] | None = None
    approximate: bool = False


class ExecutionBackend(abc.ABC):
    """Strategy interface: configures evaluation plans for query specs."""

    #: Registry key; subclasses must override.
    name: str = "abstract"

    def __init__(self, database: GraphDatabase) -> None:
        self.database = database
        self.cache = None

    @abc.abstractmethod
    def build_plan(self, spec: GraphQuery) -> EvaluationPlan:
        """The evaluation plan this backend uses for ``spec``."""

    def run(self, spec: GraphQuery) -> BackendAnswer:
        """Answer ``spec`` (validated first) against the bound database."""
        spec.validate()
        return run_plan(self.database, spec, self.build_plan(spec), cache=self.cache)

    def close(self) -> None:
        """Release backend resources (pools, sockets); default no-op."""

    # -- helpers shared with the session planner ------------------------
    @staticmethod
    def _resolve_measures(spec: GraphQuery) -> tuple[DistanceMeasure, ...]:
        return resolved_measures(spec)

    @staticmethod
    def _single_measure(
        spec: GraphQuery, measures: tuple[DistanceMeasure, ...]
    ) -> DistanceMeasure:
        """The measure of a topk/threshold query (first dimension default)."""
        return single_measure(spec, measures)

    def _cache_stages(self) -> tuple:
        """Cascade tail shared by every backend: cached pairs, when enabled."""
        return (cached_pairs,) if self.cache is not None else ()

    def _cache_labels(self) -> tuple[str, ...]:
        return (CachedPairStage.name,) if self.cache is not None else ()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self.database!r}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(name: str, backend: type[ExecutionBackend]) -> None:
    """Register a backend class under ``name`` (overwrites silently)."""
    _BACKENDS[name] = backend


def available_backends() -> list[str]:
    """Names of every registered execution backend."""
    return sorted(_BACKENDS)


def create_backend(
    name: str, database: GraphDatabase, **options: object
) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        backend = _BACKENDS[name]
    except KeyError:
        raise QueryError(
            f"unknown backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return backend(database, **options)


# ----------------------------------------------------------------------
# memory — serial exhaustive evaluation (reference semantics)
# ----------------------------------------------------------------------
class MemoryBackend(ExecutionBackend):
    """Evaluates every database graph exactly, in insertion order."""

    name = "memory"

    def __init__(self, database: GraphDatabase, cache=None) -> None:
        super().__init__(database)
        self.cache = cache

    def build_plan(self, spec: GraphQuery) -> EvaluationPlan:
        return EvaluationPlan(
            source=DatabaseOrderSource(),
            cascade=self._cache_stages(),
            evaluator=SerialEvaluator(),
            stage_labels=self._cache_labels(),
        )


# ----------------------------------------------------------------------
# indexed — feature-index lower-bound pruning
# ----------------------------------------------------------------------
class IndexedBackend(ExecutionBackend):
    """Prunes never-in-the-answer candidates via sound index lower bounds.

    The pruning argument (see :mod:`repro.engine.plan`): optimistic
    vectors are componentwise ≤ the exact vectors, so a candidate whose
    optimistic vector is already Pareto-dominated by an exact vector can
    never enter the skyline. The index is *self-healing*: database
    mutations bump :attr:`GraphDatabase.version`, and every query checks
    the recorded version before trusting the index — no manual
    ``refresh_index()`` required.
    """

    name = "indexed"

    def __init__(
        self,
        database: GraphDatabase,
        use_index: bool = True,
        cache=None,
    ) -> None:
        super().__init__(database)
        self.use_index = use_index
        self.cache = cache
        self.index = FeatureIndex()
        self._index_version = -1
        self._ensure_index()

    # -- index maintenance ---------------------------------------------
    def _ensure_index(self) -> FeatureIndex:
        """Rebuild the feature index iff the database changed under us."""
        if self._index_version != self.database.version:
            self.index = FeatureIndex()
            for entry in self.database.entries():
                self.index.add(entry.graph_id, entry.features)
            self._index_version = self.database.version
        return self.index

    def refresh_index(self) -> None:
        """Force an index rebuild (kept for the legacy executor API)."""
        self._index_version = -1
        self._ensure_index()

    def _candidate_order(self, query_features, measures):
        """(id, optimistic vector) pairs, most promising candidates first
        (legacy executor hook; the engine's bound-ordered source)."""
        return BoundOrderedSource(self._ensure_index).pairs(
            query_features, measures
        )

    def build_plan(self, spec: GraphQuery) -> EvaluationPlan:
        prune = (bound_pruning,) if self.use_index else ()
        labels = (_BOUND_STAGE_LABELS[spec.kind],) if self.use_index else ()
        return EvaluationPlan(
            source=BoundOrderedSource(self._ensure_index),
            cascade=prune + self._cache_stages(),
            evaluator=SerialEvaluator(),
            stage_labels=labels + self._cache_labels(),
        )


# ----------------------------------------------------------------------
# vectorized — batched NumPy bound kernels + VP-tree candidate index
# ----------------------------------------------------------------------
def _numpy_available() -> bool:
    import importlib.util

    return importlib.util.find_spec("numpy") is not None


class VectorizedBackend(ExecutionBackend):
    """Array-speed pruning: one batched kernel call bounds the whole db.

    Same answer sets as ``memory``/``indexed`` (property- and
    fuzz-tested), but the candidate-filtering layer runs over the packed
    :class:`~repro.index.SignatureMatrix` of a
    :class:`~repro.index.FeatureStore` instead of per-graph Python
    objects: bounds and visiting order come from vectorized kernels,
    threshold queries are pre-filtered sublinearly through the VP-tree,
    and the skyline/skyband cascade uses the batched Pareto stage. The
    store follows database mutation through the same ``version`` dirty
    flag as ``indexed``, with row-level invalidation instead of a
    rebuild.
    """

    name = "vectorized"

    def __init__(
        self,
        database: GraphDatabase,
        use_index: bool = True,
        cache=None,
    ) -> None:
        super().__init__(database)
        from repro.index import FeatureStore

        self.use_index = use_index
        self.cache = cache
        self.store = FeatureStore(database)

    def _synced_store(self):
        self.store.sync()
        return self.store

    def build_plan(self, spec: GraphQuery) -> EvaluationPlan:
        from repro.index import BatchParetoStage, IndexedSource, batch_bound_pruning

        batch_labels = {
            "skyline": BatchParetoStage.name,
            "skyband": BatchParetoStage.name,
            "topk": RankBoundStage.name,
            "threshold": ThresholdBoundStage.name,
        }
        prune = (batch_bound_pruning,) if self.use_index else ()
        labels = (batch_labels[spec.kind],) if self.use_index else ()
        return EvaluationPlan(
            source=IndexedSource(self._synced_store, prefilter=self.use_index),
            cascade=prune + self._cache_stages(),
            evaluator=SerialEvaluator(),
            stage_labels=labels + self._cache_labels(),
        )


register_backend(MemoryBackend.name, MemoryBackend)
register_backend(IndexedBackend.name, IndexedBackend)
if _numpy_available():
    register_backend(VectorizedBackend.name, VectorizedBackend)
