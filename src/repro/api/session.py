"""Sessions: the single front door for executing declarative queries.

``repro.connect(...)`` opens a :class:`Session` over anything graph-shaped
— a :class:`~repro.db.database.GraphDatabase`, a plain sequence of
:class:`~repro.graph.labeled_graph.LabeledGraph`, or a path to a saved
database JSON file — bound to a named execution backend. The session
plans and executes any :class:`~repro.api.spec.GraphQuery` (or fluent
:class:`~repro.api.spec.Query` builder) and returns a unified
:class:`~repro.api.result.ResultSet`::

    import repro

    with repro.connect(graphs, backend="indexed") as session:
        result = session.execute(repro.Query(q).skyline().refine(k=2))
        print(result.explain())

Every entry point of the library (engine, executor, CLI, benches) routes
through this layer, so swapping the backend never touches callers.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from collections.abc import Iterable

from repro.errors import QueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import measure_names
from repro.core.diversity import refine_by_diversity
from repro.db.database import GraphDatabase
from repro.api.spec import GraphQuery, Query
from repro.api.result import QueryPlan, ResultSet
from repro.api.backends import (
    ExecutionBackend,
    create_backend,
)
# Importing these modules registers the "parallel" and "sharded" backends.
from repro.api import parallel as _parallel  # noqa: F401
from repro.api import auto as _auto  # noqa: F401
from repro.shard import backend as _sharded  # noqa: F401
from repro.shard.store import ShardedGraphDatabase


class Session:
    """An open connection between a database and an execution backend.

    Parameters
    ----------
    database:
        The target database.
    backend:
        A registered backend name (``memory``/``indexed``/``parallel``)
        or a ready :class:`~repro.api.backends.ExecutionBackend` instance.
    measures:
        Session-wide default GCS dimensions, used whenever a spec leaves
        ``measures`` unset (``None`` keeps the paper's default).
    shards:
        Partition the database across this many shards (see
        :class:`~repro.shard.store.ShardedGraphDatabase`). A monolithic
        ``database`` is re-partitioned (ids and metadata preserved, the
        source object untouched); an already-sharded one is re-sharded
        only when the count differs. ``backend="sharded"`` with no
        ``shards`` defaults to 2.
    placement:
        Shard placement policy name (``"hash"``/``"size-balanced"``) or
        instance; only consulted when a (re-)partition happens.
    backend_options:
        Forwarded to the backend constructor (e.g. ``use_index=False``,
        ``cache=...``, ``max_workers=4``, ``parallel=True``).
    """

    def __init__(
        self,
        database: GraphDatabase,
        backend: "str | ExecutionBackend" = "memory",
        measures: tuple[object, ...] | None = None,
        shards: int | None = None,
        placement: object = "hash",
        **backend_options: object,
    ) -> None:
        if shards is not None and isinstance(backend, ExecutionBackend):
            # Re-partitioning would desynchronize session.database from
            # the database the ready-made backend is bound to.
            raise QueryError(
                "shards= cannot be combined with a backend instance; "
                "bind the backend to a ShardedGraphDatabase instead"
            )
        if shards is None and backend == "sharded" and not isinstance(
            database, ShardedGraphDatabase
        ):
            shards = 2
        if shards is not None and (
            not isinstance(database, ShardedGraphDatabase)
            or database.shard_count != shards
        ):
            database = ShardedGraphDatabase.from_database(
                database, shards=shards, placement=placement
            )
        self.database = database
        self.default_measures = tuple(measures) if measures is not None else None
        if isinstance(backend, ExecutionBackend):
            if backend_options:
                raise QueryError(
                    "backend options cannot be combined with a backend instance"
                )
            self._backend = backend
        else:
            self._backend = create_backend(backend, database, **backend_options)
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The live execution backend."""
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    def close(self) -> None:
        """Release backend resources; further queries raise QueryError."""
        if not self._closed:
            self._backend.close()
            self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<Session backend={self.backend_name!r} "
            f"database={self.database.name!r} ({len(self.database)} graphs)>"
        )

    # -- planning and execution -----------------------------------------
    def _materialize(self, query: "GraphQuery | Query") -> GraphQuery:
        spec = query.build() if isinstance(query, Query) else query.validate()
        if spec.measures is None and self.default_measures is not None:
            spec = dataclasses.replace(
                spec, measures=self.default_measures
            ).validate()
        return spec

    def plan(self, query: "GraphQuery | Query") -> QueryPlan:
        """How this session would execute ``query`` (no evaluation)."""
        spec = self._materialize(query)
        measures = ExecutionBackend._resolve_measures(spec)
        if spec.kind in ("topk", "threshold"):
            single = ExecutionBackend._single_measure(spec, measures)
            names: tuple[str, ...] = (single.name,)
        else:
            names = measure_names(measures)
        # Duck-typed: any backend with a truthy ``use_index`` (``indexed``,
        # ``vectorized``, custom registrations) counts as index-pruning.
        uses_index = bool(getattr(self._backend, "use_index", False))
        workers = getattr(self._backend, "max_workers", 1)
        return QueryPlan(
            backend=self.backend_name,
            kind=spec.kind,
            database_size=len(self.database),
            measures=names,
            uses_index=uses_index,
            workers=workers,
            stages=self._backend.build_plan(spec).stage_labels,
            shards=getattr(self._backend, "shard_count", 1),
        )

    def execute(self, query: "GraphQuery | Query") -> ResultSet:
        """Plan and run ``query``, returning the unified result set."""
        if self._closed:
            raise QueryError("session is closed")
        spec = self._materialize(query)
        plan = self.plan(spec)
        cache = getattr(self._backend, "cache", None)
        counters_before = (cache.hits, cache.misses) if cache is not None else None
        answer = self._backend.run(spec)
        cache_info = None
        if counters_before is not None:
            cache_info = {
                "hits": cache.hits - counters_before[0],
                "misses": cache.misses - counters_before[1],
                "served": answer.stats.served_from_cache,
                "pinned": cache.pinned,
                "pin_limit": cache.pin_limit,
            }

        refinement = None
        if (
            spec.refine_k is not None
            and spec.kind in ("skyline", "skyband")
            and spec.refine_k < len(answer.ids)
        ):
            refinement = refine_by_diversity(
                [self.database.get(graph_id) for graph_id in answer.ids],
                spec.refine_k,
                measures=spec.refine_measures,
                method=spec.refine_method,
            )

        ids = answer.ids
        if spec.limit is not None:
            ids = ids[: spec.limit]
        return ResultSet(
            spec=spec,
            plan=plan,
            database=self.database,
            ids=ids,
            evaluated_ids=answer.evaluated_ids,
            vectors=answer.vectors,
            distances=answer.distances,
            stats=answer.stats,
            refinement=refinement,
            cache_info=cache_info,
            intervals=answer.intervals,
            approximate=answer.approximate,
        )

    def watch(self, query: "GraphQuery | Query", cache=None) -> "LiveView":
        """Materialize ``query`` as a live view that follows database
        mutation (see :class:`repro.engine.views.LiveView`).

        Only plain ``skyline`` specs are watchable. The view shares the
        backend's pair cache when one is configured (so executed queries
        and views never solve the same pair twice); pass ``cache=`` to
        share a different one.
        """
        from repro.engine.views import LiveView

        if self._closed:
            raise QueryError("session is closed")
        spec = self._materialize(query)
        if cache is None:
            cache = getattr(self._backend, "cache", None)
        return LiveView(self, spec, cache=cache)


def connect(
    source: "GraphDatabase | Iterable[LabeledGraph] | str | os.PathLike",
    backend: "str | ExecutionBackend" = "memory",
    measures: tuple[object, ...] | None = None,
    name: str = "graphdb",
    shards: int | None = None,
    placement: object = "hash",
    **backend_options: object,
) -> Session:
    """Open a :class:`Session` over ``source``.

    ``source`` may be a :class:`~repro.db.database.GraphDatabase` (used
    as-is), an iterable of graphs (loaded into a fresh database), or a
    path to a database JSON file saved with
    :func:`repro.db.persistence.save_database`. With ``shards=N`` (or
    ``backend="sharded"``) the session runs over a
    :class:`~repro.shard.store.ShardedGraphDatabase` partitioned by
    ``placement``. Answers never depend on placement; for a
    *bit-identical* re-shard of a saved database, load it with
    ``load_database(path, preserve_ids=True)`` first (the default load
    compacts ids, which moves hash-placed graphs).
    """
    if isinstance(source, GraphDatabase):
        database = source
    elif isinstance(source, (str, os.PathLike, Path)):
        from repro.db.persistence import load_database

        database = load_database(source)
    else:
        database = GraphDatabase.from_graphs(source, name=name)
    return Session(
        database,
        backend=backend,
        measures=measures,
        shards=shards,
        placement=placement,
        **backend_options,
    )
