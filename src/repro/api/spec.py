"""Declarative query specifications: :class:`GraphQuery` and the builder.

A :class:`GraphQuery` is an immutable, backend-agnostic description of one
similarity query over a graph database — what to retrieve (``skyline``,
``skyband``, ``topk`` or ``threshold``), under which measure vector, with
which skyline algorithm, and how to post-process the answer (diversity
refinement, result limit). Because the spec carries no execution state it
can be validated eagerly, shipped over a wire as JSON, replayed against a
different backend, and compared for equality in tests.

The fluent :class:`Query` builder produces specs without positional-field
noise::

    spec = (Query(q)
            .measures("edit", "mcs")
            .skyline(algorithm="sfs")
            .refine(k=2)
            .build())

Every builder step returns a *new* builder, so partially-built queries can
be shared and forked safely.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import QueryError, SerializationError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.measures.base import DistanceMeasure, available_measures, get_measure
from repro.skyline import ALGORITHMS

#: The query kinds every execution backend must support.
QUERY_KINDS = ("skyline", "skyband", "topk", "threshold")

#: Diversity refinement methods (mirrors :func:`repro.core.diversity`).
REFINE_METHODS = ("exhaustive", "greedy")

MeasureSpec = "str | DistanceMeasure"


@dataclass(frozen=True)
class GraphQuery:
    """An immutable similarity-query specification.

    Attributes
    ----------
    graph:
        The query graph ``q``.
    kind:
        One of :data:`QUERY_KINDS`.
    measures:
        GCS dimensions as registry names (or measure instances); ``None``
        means the paper's default ``(edit, mcs, union)``.
    algorithm:
        Generic skyline algorithm for ``skyline``/``skyband`` kinds.
    tolerance:
        Dominance tolerance for floating-point measure values.
    k:
        Band width for ``skyband``; result count for ``topk``.
    measure:
        The single measure for ``topk``/``threshold``; ``None`` falls back
        to the first GCS dimension.
    threshold:
        Distance cut-off for ``threshold`` queries.
    refine_k / refine_method / refine_measures:
        Section-VII diversity refinement of a skyline/skyband answer.
    limit:
        Cap on the number of returned graphs (applied last).
    budget_ms / budget_nodes:
        Per-query evaluation budget (wall-clock milliseconds / search-tree
        expansions per evaluation pass). Setting either opts the query
        into **anytime** execution: every exact evaluation runs under the
        budget, candidates carry certified ``[lower, upper]`` intervals,
        and straddling candidates are refined progressively. With only
        ``budget_nodes`` the engine refines until every interval settles
        (the answer is exact); with ``budget_ms`` the answer may come back
        flagged approximate, over intervals.
    """

    graph: LabeledGraph
    kind: str = "skyline"
    measures: tuple[Any, ...] | None = None
    algorithm: str = "bnl"
    tolerance: float = 0.0
    k: int | None = None
    measure: Any | None = None
    threshold: float | None = None
    refine_k: int | None = None
    refine_method: str = "exhaustive"
    refine_measures: tuple[Any, ...] | None = None
    limit: int | None = None
    budget_ms: int | None = None
    budget_nodes: int | None = None

    @property
    def anytime(self) -> bool:
        """Whether this spec opts into budget-aware anytime execution."""
        return self.budget_ms is not None or self.budget_nodes is not None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "GraphQuery":
        """Check the spec for consistency; returns ``self`` for chaining.

        Raises :class:`~repro.errors.QueryError` with an available-names
        hint on unknown kinds, measures or algorithms, mirroring the style
        of :func:`repro.skyline.skyline`.
        """
        if not isinstance(self.graph, LabeledGraph):
            raise QueryError("query graph must be a LabeledGraph")
        if self.kind not in QUERY_KINDS:
            raise QueryError(
                f"unknown query kind {self.kind!r}; "
                f"available: {', '.join(QUERY_KINDS)}"
            )
        if self.algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown skyline algorithm {self.algorithm!r}; "
                f"available: {', '.join(sorted(ALGORITHMS))}"
            )
        if self.measures is not None:
            if not self.measures:
                raise QueryError("a compound similarity needs at least one measure")
            for spec in self.measures:
                get_measure(spec)  # raises QueryError with the hint
        if self.measure is not None:
            get_measure(self.measure)
        if self.tolerance < 0:
            raise QueryError("tolerance must be non-negative")
        if self.kind in ("skyband", "topk"):
            if self.k is None or self.k < 1:
                raise QueryError("k must be at least 1")
        if self.kind == "threshold":
            if self.threshold is None:
                raise QueryError("threshold queries need a threshold value")
            if self.threshold < 0:
                raise QueryError("threshold must be non-negative")
        if self.refine_k is not None:
            if self.kind not in ("skyline", "skyband"):
                raise QueryError(
                    "diversity refinement applies to skyline/skyband queries only"
                )
            if self.refine_k < 2:
                raise QueryError(
                    "refine_k must be at least 2 (diversity is defined on pairs)"
                )
            if self.refine_method not in REFINE_METHODS:
                raise QueryError(
                    f"unknown diversity method {self.refine_method!r}; "
                    f"available: {', '.join(REFINE_METHODS)}"
                )
            if self.refine_measures is not None:
                for spec in self.refine_measures:
                    get_measure(spec)
        if self.limit is not None and self.limit < 1:
            raise QueryError("limit must be at least 1")
        if self.budget_ms is not None and self.budget_ms < 1:
            raise QueryError("budget_ms must be at least 1")
        if self.budget_nodes is not None and self.budget_nodes < 1:
            raise QueryError("budget_nodes must be at least 1")
        return self

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data payload (JSON-representable) for this spec.

        Measure instances are serialized by registry name; an instance
        whose name does not resolve back to the registry cannot be shipped.
        """
        return {
            "graph": graph_to_dict(self.graph),
            "kind": self.kind,
            "measures": _measure_names(self.measures),
            "algorithm": self.algorithm,
            "tolerance": self.tolerance,
            "k": self.k,
            "measure": _measure_name(self.measure),
            "threshold": self.threshold,
            "refine_k": self.refine_k,
            "refine_method": self.refine_method,
            "refine_measures": _measure_names(self.refine_measures),
            "limit": self.limit,
            "budget_ms": self.budget_ms,
            "budget_nodes": self.budget_nodes,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GraphQuery":
        """Rebuild (and validate) a spec from :meth:`to_dict` output."""
        try:
            graph = graph_from_dict(payload["graph"])
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"malformed query payload: {exc}") from exc
        measures = payload.get("measures")
        refine_measures = payload.get("refine_measures")
        spec = cls(
            graph=graph,
            kind=payload.get("kind", "skyline"),
            measures=tuple(measures) if measures is not None else None,
            algorithm=payload.get("algorithm", "bnl"),
            tolerance=float(payload.get("tolerance", 0.0)),
            k=payload.get("k"),
            measure=payload.get("measure"),
            threshold=payload.get("threshold"),
            refine_k=payload.get("refine_k"),
            refine_method=payload.get("refine_method", "exhaustive"),
            refine_measures=(
                tuple(refine_measures) if refine_measures is not None else None
            ),
            limit=payload.get("limit"),
            budget_ms=payload.get("budget_ms"),
            budget_nodes=payload.get("budget_nodes"),
        )
        return spec.validate()

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON string for this spec (the wire format)."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "GraphQuery":
        """Rebuild (and validate) a spec from :meth:`to_json` output."""
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"malformed query JSON: {exc}") from exc
        return cls.from_dict(data)


def _measure_name(spec: Any | None) -> str | None:
    """Registry name of one measure spec (validating instances resolve)."""
    if spec is None or isinstance(spec, str):
        return spec
    if isinstance(spec, DistanceMeasure):
        if spec.name not in available_measures():
            raise SerializationError(
                f"measure {spec.name!r} is not registered and cannot be "
                "serialized; register it with repro.measures.register_measure"
            )
        return spec.name
    raise SerializationError(f"cannot serialize measure spec {spec!r}")


def _measure_names(specs: tuple[Any, ...] | None) -> list[str] | None:
    if specs is None:
        return None
    return [_measure_name(spec) for spec in specs]


class Query:
    """Fluent, immutable builder of :class:`GraphQuery` specs.

    >>> from repro.datasets import figure3_query
    >>> spec = Query(figure3_query()).measures("edit", "mcs").skyline().build()
    >>> spec.kind, spec.measures
    ('skyline', ('edit', 'mcs'))
    """

    def __init__(self, graph: LabeledGraph, _spec: GraphQuery | None = None) -> None:
        self._spec = _spec if _spec is not None else GraphQuery(graph=graph)

    def _replace(self, **changes: Any) -> "Query":
        return Query(self._spec.graph, dataclasses.replace(self._spec, **changes))

    # -- configuration -------------------------------------------------
    def measures(self, *specs: Any) -> "Query":
        """Set the GCS dimensions (names or measure instances)."""
        return self._replace(measures=tuple(specs))

    def algorithm(self, name: str) -> "Query":
        """Set the generic skyline algorithm."""
        return self._replace(algorithm=name)

    def tolerance(self, value: float) -> "Query":
        """Set the dominance tolerance."""
        return self._replace(tolerance=value)

    # -- query kinds ---------------------------------------------------
    def skyline(
        self, algorithm: str | None = None, tolerance: float | None = None
    ) -> "Query":
        """Retrieve the graph similarity skyline ``GSS(D, q)``."""
        changes: dict[str, Any] = {"kind": "skyline"}
        if algorithm is not None:
            changes["algorithm"] = algorithm
        if tolerance is not None:
            changes["tolerance"] = tolerance
        return self._replace(**changes)

    def skyband(self, k: int, algorithm: str | None = None) -> "Query":
        """Retrieve the k-skyband (graphs dominated by fewer than ``k``)."""
        changes: dict[str, Any] = {"kind": "skyband", "k": k}
        if algorithm is not None:
            changes["algorithm"] = algorithm
        return self._replace(**changes)

    def topk(self, k: int, measure: Any | None = None) -> "Query":
        """Retrieve the single-measure top-k baseline."""
        return self._replace(kind="topk", k=k, measure=measure)

    def threshold(self, threshold: float, measure: Any | None = None) -> "Query":
        """Retrieve all graphs within ``threshold`` under one measure."""
        return self._replace(kind="threshold", threshold=threshold, measure=measure)

    # -- post-processing -----------------------------------------------
    def refine(
        self,
        k: int,
        method: str = "exhaustive",
        measures: tuple[Any, ...] | None = None,
    ) -> "Query":
        """Refine a skyline/skyband answer to ``k`` diverse graphs."""
        return self._replace(
            refine_k=k, refine_method=method, refine_measures=measures
        )

    def limit(self, n: int) -> "Query":
        """Cap the number of returned graphs."""
        return self._replace(limit=n)

    def budget(self, ms: int | None = None, nodes: int | None = None) -> "Query":
        """Opt into anytime execution under a per-query evaluation budget.

        ``ms`` caps wall-clock time; ``nodes`` caps search expansions per
        evaluation pass. See :class:`GraphQuery` for the semantics.
        """
        return self._replace(budget_ms=ms, budget_nodes=nodes)

    # -- finalization --------------------------------------------------
    def build(self) -> GraphQuery:
        """The validated immutable spec."""
        return self._spec.validate()

    def __repr__(self) -> str:
        return f"<Query {self._spec.kind} over {self._spec.graph.name!r}>"
