"""Mutation operations: one wire encoding for testkit and server.

The library has exactly three database mutations — insert a graph,
remove one, relabel one vertex (remove + re-insert, the database's only
update path) — and two consumers of their JSON encoding: the testkit's
replayable workloads (:mod:`repro.testkit.workload`) and the query
service's ``/v1/mutate`` endpoint (:mod:`repro.server`). This module is
the single encoder/decoder both route through, so a mutation stream
recorded by the fuzzer can be replayed verbatim against a live server
(and served mutations stay fuzzable against the oracle).

Graphs are referenced by caller-chosen string *handles* rather than
database ids: ids depend on how many inserts actually executed, which
would change under workload shrinking and across server restarts;
handles are stable names mapped to live ids at apply time.

Wire payloads::

    {"op": "add",     "handle": "g0", "graph": {...}}
    {"op": "remove",  "handle": "g0"}
    {"op": "relabel", "handle": "g0", "new_handle": "g1",
     "vertex_index": 2, "label": "N"}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.errors import QueryError, SerializationError, StaleHandleError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.serialization import graph_from_dict, graph_to_dict


@dataclass(frozen=True)
class MutationOp:
    """Base of the three mutation operations; subclasses set :attr:`op`."""

    op: ClassVar[str] = "mutation"

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op}


@dataclass(frozen=True)
class AddOp(MutationOp):
    """Insert ``graph`` under the fresh ``handle``."""

    handle: str
    graph: LabeledGraph

    op: ClassVar[str] = "add"

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "handle": self.handle,
            "graph": graph_to_dict(self.graph),
        }


@dataclass(frozen=True)
class RemoveOp(MutationOp):
    """Remove the graph stored under ``handle``."""

    handle: str

    op: ClassVar[str] = "remove"

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op, "handle": self.handle}


@dataclass(frozen=True)
class RelabelOp(MutationOp):
    """Relabel one vertex of ``handle``'s graph; the relabeled copy
    replaces the original under ``new_handle``.

    ``vertex_index`` selects a vertex positionally (mod order) so the
    operation stays applicable to any graph.
    """

    handle: str
    new_handle: str
    vertex_index: int
    label: str

    op: ClassVar[str] = "relabel"

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "handle": self.handle,
            "new_handle": self.new_handle,
            "vertex_index": self.vertex_index,
            "label": self.label,
        }


#: Registry of the wire-encodable mutation operations.
MUTATION_OPS: dict[str, type[MutationOp]] = {
    cls.op: cls for cls in (AddOp, RemoveOp, RelabelOp)
}


def mutation_from_dict(payload: dict[str, Any]) -> MutationOp:
    """Rebuild one mutation op from its :meth:`MutationOp.to_dict` payload.

    Raises :class:`~repro.errors.SerializationError` on unknown ops and
    missing or malformed fields — the validation path the server's
    mutate endpoint and the workload decoder share.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"malformed mutation payload: expected an object, "
            f"got {type(payload).__name__}"
        )
    try:
        op = payload["op"]
        cls = MUTATION_OPS[op]
    except (KeyError, TypeError) as exc:
        known = ", ".join(sorted(MUTATION_OPS))
        raise SerializationError(
            f"malformed mutation payload: unknown op {exc}; known ops: {known}"
        ) from exc
    try:
        if cls is AddOp:
            return AddOp(
                handle=str(payload["handle"]),
                graph=graph_from_dict(payload["graph"]),
            )
        if cls is RemoveOp:
            return RemoveOp(handle=str(payload["handle"]))
        return RelabelOp(
            handle=str(payload["handle"]),
            new_handle=str(payload["new_handle"]),
            vertex_index=int(payload["vertex_index"]),
            label=str(payload["label"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed {op!r} mutation payload: {exc!r}"
        ) from exc


def relabeled_copy(
    graph: LabeledGraph, vertex_index: int, label: str, name: str
) -> LabeledGraph:
    """The relabeled replacement graph a :class:`RelabelOp` inserts.

    One definition of the positional-vertex semantics, shared by the
    workload generator, the differential runner and the server. An
    order-0 graph has no vertex to select (the positional index is
    taken mod order), so relabeling it is a structured error rather
    than a ``ZeroDivisionError``.
    """
    if graph.order == 0:
        raise QueryError("cannot relabel a vertex of an empty graph")
    relabeled = graph.copy(name=name)
    vertex = relabeled.vertices()[vertex_index % relabeled.order]
    relabeled.relabel_vertex(vertex, label)
    return relabeled


def applicable(op: MutationOp, handles: dict[str, int]) -> bool:
    """Whether ``op`` can apply given the live handle → id map.

    ``add`` needs a fresh handle; ``remove`` a live one; ``relabel`` a
    live source and a fresh target. The testkit runner *skips* steps
    that fail this test (so any workload subsequence replays); the
    server rejects them with a structured error instead.
    """
    if isinstance(op, AddOp):
        return op.handle not in handles
    if isinstance(op, RemoveOp):
        return op.handle in handles
    assert isinstance(op, RelabelOp)
    return op.handle in handles and op.new_handle not in handles


def check_applicable(
    op: MutationOp, handles: dict[str, int], database: "Any" = None
) -> None:
    """Raise the precise applicability error for ``op``, if any.

    Dead source handles raise :class:`~repro.errors.StaleHandleError`
    (the server maps it to a structured ``stale-handle`` 409); duplicate
    target handles raise a plain :class:`~repro.errors.QueryError`
    conflict. With ``database`` supplied the check is *total*: every op
    it passes is guaranteed to apply, so a WAL record appended after it
    can never describe a mutation that then fails — which is why it
    also rejects relabeling an order-0 graph (no vertex to select) here,
    before anything is durably logged.
    """
    if isinstance(op, AddOp):
        if op.handle in handles:
            raise QueryError(
                f"mutation 'add' not applicable: handle {op.handle!r} "
                f"already live"
            )
    elif isinstance(op, RemoveOp):
        if op.handle not in handles:
            raise StaleHandleError(op.op, op.handle)
    else:
        assert isinstance(op, RelabelOp)
        if op.handle not in handles:
            raise StaleHandleError(op.op, op.handle)
        if op.new_handle in handles:
            raise QueryError(
                f"mutation 'relabel' not applicable: target handle "
                f"{op.new_handle!r} already live"
            )
        if database is not None and database.get(handles[op.handle]).order == 0:
            raise QueryError(
                f"mutation 'relabel' not applicable: graph under handle "
                f"{op.handle!r} has no vertices"
            )


def _log_op(database: "Any", op: MutationOp, handle_to_id: dict[str, int]) -> int:
    """Append the one WAL record this op commits as; returns its LSN.

    The record is the wire payload extended with the ids the apply is
    about to assign (predictable before any state changes: removal never
    advances the allocator, so the next un-forced insert takes
    ``database.next_id``) — replay forces those ids so handle maps,
    indexes and shard placement rebuild exactly.
    """
    wal = database.wal
    payload = op.to_dict()
    if isinstance(op, AddOp):
        graph_id = database.next_id
        payload["graph_id"] = graph_id
        segment = database.wal_segment_for_insert(op.graph, graph_id)
    elif isinstance(op, RemoveOp):
        graph_id = handle_to_id[op.handle]
        payload["graph_id"] = graph_id
        segment = database.wal_segment(graph_id)
    else:
        assert isinstance(op, RelabelOp)
        old_id = handle_to_id[op.handle]
        payload["graph_id"] = old_id
        payload["new_graph_id"] = database.next_id
        segment = database.wal_segment(old_id)
    return wal.append(payload, database.version + 1, segment)


def apply_mutation(
    database: "Any",
    op: MutationOp,
    handle_to_id: dict[str, int],
    id_to_handle: dict[int, str],
) -> dict[str, Any]:
    """Apply ``op`` to ``database``, maintaining both handle maps.

    Returns an acknowledgement payload (op, handle(s), the affected
    database id, and the resulting database size). Raises
    :class:`~repro.errors.StaleHandleError` /
    :class:`~repro.errors.QueryError` when :func:`applicable` is false —
    dead or duplicate handles never silently no-op here.

    With a :class:`~repro.db.wal.DurableLog` attached to ``database``,
    one record per op (including relabel, logged compound rather than as
    its remove + insert halves) is appended *before* anything applies;
    the ack then carries the committed ``lsn``, durable to whatever the
    log's sync policy promises by the time this returns.
    """
    check_applicable(op, handle_to_id, database)
    wal = getattr(database, "wal", None)
    lsn = None
    if wal is not None and not wal.suppressed:
        lsn = _log_op(database, op, handle_to_id)
        try:
            with wal.suppress():
                ack = _apply_checked(database, op, handle_to_id, id_to_handle)
        except BaseException:
            # check_applicable makes this unreachable for wire-decodable
            # ops, but if an apply ever does fail the write-ahead record
            # must not survive it: a logged-but-unapplied op would replay
            # as a phantom write and poison every later recover().
            wal.annul(lsn)
            raise
    else:
        ack = _apply_checked(database, op, handle_to_id, id_to_handle)
    if lsn is not None:
        ack["lsn"] = lsn
        if wal.should_compact():
            wal.compact_from(database, handle_to_id)
    ack["database_size"] = len(database)
    return ack


def _apply_checked(
    database: "Any",
    op: MutationOp,
    handle_to_id: dict[str, int],
    id_to_handle: dict[int, str],
) -> dict[str, Any]:
    if isinstance(op, AddOp):
        graph_id = database.insert(op.graph)
        handle_to_id[op.handle] = graph_id
        id_to_handle[graph_id] = op.handle
        return {"op": op.op, "handle": op.handle, "graph_id": graph_id}
    if isinstance(op, RemoveOp):
        graph_id = handle_to_id.pop(op.handle)
        del id_to_handle[graph_id]
        database.remove(graph_id)
        return {"op": op.op, "handle": op.handle, "graph_id": graph_id}
    assert isinstance(op, RelabelOp)
    # Build the replacement before touching any state, and move the
    # handle maps only once both database halves have landed — a
    # failure mid-relabel must never leave the maps disagreeing.
    old_id = handle_to_id[op.handle]
    relabeled = relabeled_copy(
        database.get(old_id), op.vertex_index, op.label, op.new_handle
    )
    database.remove(old_id)
    new_id = database.insert(relabeled)
    del handle_to_id[op.handle]
    del id_to_handle[old_id]
    handle_to_id[op.new_handle] = new_id
    id_to_handle[new_id] = op.new_handle
    return {
        "op": op.op,
        "handle": op.handle,
        "new_handle": op.new_handle,
        "graph_id": new_id,
    }
