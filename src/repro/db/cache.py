"""Pairwise-computation cache for repeated queries.

Interactive sessions issue many queries against the same database, often
re-using query graphs (refinement after inspection, parameter tweaks).
:class:`QueryCache` memoises exact GCS vectors keyed by
``(database graph id, query canonical hash, measure names)``, with an LRU
bound so long sessions cannot grow without limit. The executor consults
it transparently when constructed with ``cache=``.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.graph.canonical import canonical_hash
from repro.graph.labeled_graph import LabeledGraph

_Key = tuple[int, str, tuple[str, ...]]


class QueryCache:
    """Bounded LRU cache of exact GCS vectors."""

    def __init__(self, max_entries: int = 50_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[_Key, tuple[float, ...]] = OrderedDict()
        self._query_hashes: dict[int, str] = {}
        self.hits = 0
        self.misses = 0

    def query_hash(self, query: LabeledGraph) -> str:
        """Canonical hash of the query (memoised per object identity)."""
        key = id(query)
        if key not in self._query_hashes:
            self._query_hashes[key] = canonical_hash(query)
        return self._query_hashes[key]

    def get(
        self,
        graph_id: int,
        query_hash: str,
        measures: tuple[str, ...],
    ) -> tuple[float, ...] | None:
        """Cached vector, or ``None``; refreshes LRU position on hit."""
        key = (graph_id, query_hash, measures)
        vector = self._entries.get(key)
        if vector is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return vector

    def put(
        self,
        graph_id: int,
        query_hash: str,
        measures: tuple[str, ...],
        vector: tuple[float, ...],
    ) -> None:
        """Store a vector, evicting the least recently used beyond the cap."""
        key = (graph_id, query_hash, measures)
        self._entries[key] = vector
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def invalidate_graph(self, graph_id: int) -> None:
        """Drop all entries of one database graph (after update/removal)."""
        stale = [key for key in self._entries if key[0] == graph_id]
        for key in stale:
            del self._entries[key]

    def clear(self) -> None:
        """Drop everything (statistics included)."""
        self._entries.clear()
        self._query_hashes.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
