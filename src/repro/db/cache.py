"""Pairwise-computation caches for repeated and refined queries.

Interactive sessions issue many queries against the same database, often
re-using query graphs (refinement after inspection, parameter tweaks) —
and essentially all query time goes into exact per-pair GED/MCS solving.
Two cache flavours share one bounded-LRU core and one lookup protocol
(:meth:`subject_key` / :meth:`get` / :meth:`put`), so the evaluation
engine's cached-pair cascade stage works against either:

* :class:`PairCache` — the canonical cross-query cache. Entries are keyed
  by the *canonical hashes* of the two graphs plus one measure name, so a
  solved pair is re-used across queries, sessions, measure subsets, and
  even isomorphic re-submissions of the same graph. Because keys identify
  graph structure rather than storage slots, entries stay sound under
  database mutation: a removed graph's entries are merely unused (and
  eventually LRU-evicted), never wrong.
* :class:`QueryCache` — the legacy per-executor cache keyed by database
  graph id and the full measure-name tuple. Kept for existing callers;
  prefer :class:`PairCache` in new code.

Canonical hashing is iso-invariant (:mod:`repro.graph.canonical`); the
measures shipped with the paper depend only on graph structure and labels,
so serving a cached value for an isomorphic pair is exact, not
approximate. Construct :class:`PairCache` with ``symmetric=False`` when
caching a non-symmetric custom measure.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable

from repro.graph.canonical import canonical_hash
from repro.graph.labeled_graph import LabeledGraph


class _LruStore:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()

    def get(self, key: Hashable) -> object | None:
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def drop_where(self, predicate) -> None:
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class PairCache:
    """Canonical-hash-keyed cache of exact measure values, per measure.

    The cache the staged engine shares across queries and sessions: one
    float per ``(graph hash, graph hash, measure name)``. A refined query
    re-uses every pair already solved, and a query under measures
    ``(edit, mcs)`` re-uses ``edit`` values solved by an earlier
    ``(edit, mcs, union)`` query — vector lookups assemble per-measure
    entries and succeed only when every dimension is present.

    Parameters
    ----------
    max_entries:
        LRU bound on stored per-measure values.
    symmetric:
        Normalize the hash pair so ``d(a, b)`` and ``d(b, a)`` share an
        entry. Sound for the paper's measures (all symmetric); pass
        ``False`` when caching a non-symmetric custom measure.
    pin_limit:
        LRU cap on the query-hash memo (see :meth:`query_hash`). Each
        memo entry *pins* a query graph with a strong reference, so the
        cap bounds how much graph memory a long-lived cache — e.g. one
        shared across the sessions of a sharded deployment — can keep
        alive. Surfaced as ``pinned``/``pin_limit`` in
        :attr:`~repro.api.result.ResultSet.cache_info`.
    """

    #: Default LRU bound on memoised canonical query hashes.
    _HASH_MEMO_LIMIT = 256

    def __init__(
        self,
        max_entries: int = 200_000,
        symmetric: bool = True,
        pin_limit: int | None = None,
    ) -> None:
        self._store = _LruStore(max_entries)
        self.symmetric = symmetric
        self.pin_limit = self._HASH_MEMO_LIMIT if pin_limit is None else pin_limit
        if self.pin_limit < 1:
            raise ValueError("pin_limit must be positive")
        self.hits = 0
        self.misses = 0
        self._hash_memo: "OrderedDict[tuple[int, int], tuple[LabeledGraph, str]]" = (
            OrderedDict()
        )

    @property
    def max_entries(self) -> int:
        return self._store.max_entries

    @property
    def pinned(self) -> int:
        """How many query graphs the hash memo currently pins."""
        return len(self._hash_memo)

    # -- lookup protocol (shared with QueryCache) -----------------------
    def query_hash(self, query: LabeledGraph) -> str:
        """Canonical hash of the query graph, memoised soundly.

        Canonicalization is the per-query fixed cost of every cached
        run, so repeated queries with the same graph (refinement loops,
        replayed specs, live views) should not pay it again. Plain
        ``id()`` memoisation would be unsound — ids are re-used after
        garbage collection and survive in-place mutation — so entries
        are keyed by ``(id(graph), graph.mutation_count)`` *and* hold a
        strong reference to the graph: the reference pins the id against
        re-use while the entry lives (verified with ``is``), and any
        in-place mutation bumps :attr:`~repro.graph.labeled_graph.
        LabeledGraph.mutation_count`, changing the key. The memo is a
        small LRU so pinned graphs cannot accumulate unboundedly.
        """
        key = (id(query), query.mutation_count)
        entry = self._hash_memo.get(key)
        if entry is not None and entry[0] is query:
            self._hash_memo.move_to_end(key)
            return entry[1]
        value = canonical_hash(query)
        self._hash_memo[key] = (query, value)
        while len(self._hash_memo) > self.pin_limit:
            self._hash_memo.popitem(last=False)
        return value

    def subject_key(self, entry) -> Hashable:
        """Cache key component of a stored database graph (its iso hash)."""
        return entry.iso_hash

    def _pair(self, subject_key: Hashable, query_hash: str) -> tuple:
        if self.symmetric and isinstance(subject_key, str):
            return tuple(sorted((subject_key, query_hash)))
        return (subject_key, query_hash)

    def get(
        self,
        subject_key: Hashable,
        query_hash: str,
        measures: tuple[str, ...],
    ) -> tuple[float, ...] | None:
        """Cached vector assembled per measure, or ``None`` if any is absent."""
        pair = self._pair(subject_key, query_hash)
        values = []
        for name in measures:
            value = self._store.get((pair, name))
            if value is None:
                self.misses += 1
                return None
            values.append(value)
        self.hits += 1
        return tuple(values)

    def put(
        self,
        subject_key: Hashable,
        query_hash: str,
        measures: tuple[str, ...],
        vector: tuple[float, ...],
    ) -> None:
        """Store one entry per measure dimension (LRU-evicting beyond cap)."""
        pair = self._pair(subject_key, query_hash)
        for name, value in zip(measures, vector):
            self._store.put((pair, name), float(value))

    # -- maintenance ----------------------------------------------------
    def invalidate_subject(self, subject_key: Hashable) -> None:
        """Drop every entry involving ``subject_key``.

        Rarely needed — content-addressed keys stay sound under database
        mutation — but useful when a measure implementation itself changed.
        """
        self._store.drop_where(lambda key: subject_key in key[0])

    def clear(self) -> None:
        """Drop everything (statistics and hash memo included)."""
        self._store.clear()
        self._hash_memo.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of vector lookups served entirely from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__}: {len(self)} entries, "
            f"hit rate {self.hit_rate:.0%}>"
        )


class QueryCache(PairCache):
    """Legacy bounded LRU cache keyed by database graph id.

    Predates :class:`PairCache`: entries are keyed by ``(graph id, query
    hash, full measure-name tuple)`` and store whole vectors, so nothing
    is shared across measure subsets and entries die with their database
    slot (:meth:`invalidate_graph` after updates). Kept because existing
    callers rely on exactly those semantics; new code should use
    :class:`PairCache`.
    """

    def __init__(
        self, max_entries: int = 50_000, pin_limit: int | None = None
    ) -> None:
        super().__init__(
            max_entries=max_entries, symmetric=False, pin_limit=pin_limit
        )

    def subject_key(self, entry) -> Hashable:
        return entry.graph_id

    def get(
        self,
        graph_id: Hashable,
        query_hash: str,
        measures: tuple[str, ...],
    ) -> tuple[float, ...] | None:
        """Cached vector, or ``None``; refreshes LRU position on hit."""
        vector = self._store.get((graph_id, query_hash, tuple(measures)))
        if vector is None:
            self.misses += 1
            return None
        self.hits += 1
        return vector

    def put(
        self,
        graph_id: Hashable,
        query_hash: str,
        measures: tuple[str, ...],
        vector: tuple[float, ...],
    ) -> None:
        """Store a vector, evicting the least recently used beyond the cap."""
        self._store.put((graph_id, query_hash, tuple(measures)), tuple(vector))

    def invalidate_graph(self, graph_id: int) -> None:
        """Drop all entries of one database graph (after update/removal)."""
        self._store.drop_where(lambda key: key[0] == graph_id)

    # This class keys by graph id, so the subject IS the graph id.
    invalidate_subject = invalidate_graph
