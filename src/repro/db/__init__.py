"""Graph-database layer: storage, feature index, pruning executor.

Wraps the core GSS computation with the machinery a database system needs:
an id-addressed store with iso-deduplication, a feature index providing
sound lower bounds on the paper's measures, an executor that prunes
never-in-the-skyline candidates before running exact solvers, and query
statistics making the savings measurable.
"""

from repro.db.database import GraphDatabase, StoredGraph
from repro.db.index import FeatureIndex
from repro.db.stats import PhaseTimer, QueryStats
from repro.db.executor import ExecutionResult, SkylineExecutor
from repro.db.cache import PairCache, QueryCache
from repro.db.persistence import (
    atomic_write_text,
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.db.wal import DurableLog, RecoveredState, SyncPolicy, recover

__all__ = [
    "GraphDatabase",
    "StoredGraph",
    "FeatureIndex",
    "QueryStats",
    "PhaseTimer",
    "ExecutionResult",
    "SkylineExecutor",
    "PairCache",
    "QueryCache",
    "database_to_dict",
    "database_from_dict",
    "save_database",
    "load_database",
    "atomic_write_text",
    "DurableLog",
    "RecoveredState",
    "SyncPolicy",
    "recover",
]
