"""In-memory graph database with stable ids and optional deduplication.

The store the paper's queries run against: insertion-ordered graphs with
integer ids, per-graph metadata, and iso-invariant duplicate detection via
canonical hashing (hash collisions are resolved by an exact isomorphism
check, so deduplication is always sound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import TYPE_CHECKING

from repro.errors import DatasetError, VertexNotFoundError
from repro.graph.canonical import canonical_hash
from repro.graph.features import GraphFeatures
from repro.graph.isomorphism import is_isomorphic
from repro.graph.labeled_graph import LabeledGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.wal import DurableLog


@dataclass
class StoredGraph:
    """One database entry: the graph plus bookkeeping."""

    graph_id: int
    graph: LabeledGraph
    features: GraphFeatures
    iso_hash: str
    metadata: dict[str, object] = field(default_factory=dict)


class GraphDatabase:
    """An insertion-ordered collection of labeled graphs.

    Graphs are copied on insert, so later mutation of the caller's object
    cannot corrupt the index or the cached features.
    """

    def __init__(self, name: str = "graphdb") -> None:
        self.name = name
        self._entries: dict[int, StoredGraph] = {}
        self._by_hash: dict[str, list[int]] = {}
        self._next_id = 0
        self._version = 0
        self._vertex_load = 0
        self._wal: "DurableLog | None" = None

    @property
    def vertex_load(self) -> int:
        """Total vertex count across stored graphs (O(1)).

        The load signal size-balanced shard placement reads per insert;
        maintained incrementally so placement never rescans entries.
        """
        return self._vertex_load

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every insert/remove.

        Derived structures (the executor's feature index, the ``indexed``
        backend) record the version they were built against and rebuild
        themselves when it changes, so callers never need to remember to
        call ``refresh_index()`` after mutating the database.
        """
        return self._version

    @property
    def next_id(self) -> int:
        """The id the next un-forced :meth:`insert` will assign."""
        return self._next_id

    def reserve_ids(self, next_id: int) -> None:
        """Bump the id allocator to at least ``next_id``.

        Snapshot restore calls this so ids freed by pre-snapshot removals
        are never reused — reuse would break handle bookkeeping and make
        hash placement land replayed graphs on the wrong shard.
        """
        self._next_id = max(self._next_id, next_id)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @property
    def wal(self) -> "DurableLog | None":
        """The attached write-ahead log, if any."""
        return self._wal

    def attach_wal(self, log: "DurableLog") -> None:
        """Make every subsequent mutation append-before-apply to ``log``.

        The log must already reflect this database's current state (a
        fresh :meth:`~repro.db.wal.DurableLog.initialize` snapshot of it,
        or the :meth:`~repro.db.wal.DurableLog.recover` replay that built
        it) — attaching does not retroactively journal existing entries.
        """
        self._wal = log

    def detach_wal(self) -> "DurableLog | None":
        """Stop journaling; returns the previously attached log."""
        log, self._wal = self._wal, None
        return log

    def wal_segment(self, graph_id: int) -> int:
        """WAL segment for records about an existing ``graph_id``."""
        return 0

    def wal_segment_for_insert(self, graph: LabeledGraph, graph_id: int) -> int:
        """WAL segment for a record inserting ``graph`` as ``graph_id``."""
        return 0

    def _log_mutation(self, op_payload: dict, segment: int) -> int | None:
        """Append one record for a mutation about to be applied.

        Returns its LSN, or ``None`` when no log is attached or the op
        layer is logging a compound record itself
        (:meth:`~repro.db.wal.DurableLog.suppress`). Raising here aborts
        the mutation before any state changes — write-ahead means a
        mutation the log rejected never happened.
        """
        if self._wal is None or self._wal.suppressed:
            return None
        return self._wal.append(op_payload, self._version + 1, segment)

    def _insert_payload(
        self,
        graph: LabeledGraph,
        metadata: Mapping[str, object] | None,
        graph_id: int,
    ) -> dict:
        from repro.graph.serialization import graph_to_dict

        payload: dict = {
            "op": "add",
            "graph": graph_to_dict(graph),
            "graph_id": graph_id,
        }
        if metadata:
            payload["metadata"] = dict(metadata)
        return payload

    @classmethod
    def from_graphs(
        cls,
        graphs: Iterable[LabeledGraph],
        name: str = "graphdb",
        deduplicate: bool = False,
        copy: bool = True,
    ) -> "GraphDatabase":
        """Bulk-load a database (optionally dropping isomorphic duplicates).

        ``copy=False`` stores the caller's graph objects directly (no
        defensive copy) — used by view-style sessions that must preserve
        graph identity; the caller promises not to mutate the graphs.
        """
        database = cls(name=name)
        for graph in graphs:
            if deduplicate and database.find_isomorphic(graph) is not None:
                continue
            database.insert(graph, copy=copy)
        return database

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        graph: LabeledGraph,
        metadata: Mapping[str, object] | None = None,
        copy: bool = True,
        graph_id: int | None = None,
    ) -> int:
        """Store a copy of ``graph`` (the object itself when ``copy=False``);
        returns its id.

        ``graph_id`` forces a specific id instead of the next sequential
        one — the sharded store uses this so per-shard databases hold the
        *global* ids, and re-partitioning preserves identity. Forced ids
        must be fresh; ids are never reused either way.
        """
        if graph_id is not None and graph_id in self._entries:
            raise DatasetError(f"graph id {graph_id} is already in the database")
        new_id = self._next_id if graph_id is None else graph_id
        if self._wal is not None and not self._wal.suppressed:
            self._log_mutation(
                self._insert_payload(graph, metadata, new_id),
                self.wal_segment_for_insert(graph, new_id),
            )
        entry = StoredGraph(
            graph_id=new_id,
            graph=graph.copy() if copy else graph,
            features=GraphFeatures.of(graph),
            iso_hash=canonical_hash(graph),
            metadata=dict(metadata) if metadata else {},
        )
        self._entries[entry.graph_id] = entry
        self._by_hash.setdefault(entry.iso_hash, []).append(entry.graph_id)
        self._next_id = max(self._next_id, entry.graph_id) + 1
        self._version += 1
        self._vertex_load += entry.graph.order
        return entry.graph_id

    def remove(self, graph_id: int) -> None:
        """Delete the graph with ``graph_id``."""
        if graph_id not in self._entries:
            raise DatasetError(f"graph id {graph_id} is not in the database")
        self._log_mutation(
            {"op": "remove", "graph_id": graph_id}, self.wal_segment(graph_id)
        )
        entry = self._entries.pop(graph_id)
        bucket = self._by_hash[entry.iso_hash]
        bucket.remove(graph_id)
        if not bucket:
            del self._by_hash[entry.iso_hash]
        self._version += 1
        self._vertex_load -= entry.graph.order

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, graph_id: int) -> LabeledGraph:
        """The graph stored under ``graph_id``."""
        try:
            return self._entries[graph_id].graph
        except KeyError:
            raise DatasetError(f"graph id {graph_id} is not in the database") from None

    def entry(self, graph_id: int) -> StoredGraph:
        """Full entry (graph + features + metadata) for ``graph_id``."""
        try:
            return self._entries[graph_id]
        except KeyError:
            raise DatasetError(f"graph id {graph_id} is not in the database") from None

    def ids(self) -> list[int]:
        """All graph ids, in insertion order."""
        return list(self._entries)

    def graphs(self) -> list[LabeledGraph]:
        """All graphs, in insertion order."""
        return [entry.graph for entry in self._entries.values()]

    def entries(self) -> Iterator[StoredGraph]:
        """Iterate over stored entries, in insertion order."""
        return iter(self._entries.values())

    def find_isomorphic(
        self, graph: LabeledGraph, iso_hash: str | None = None
    ) -> int | None:
        """Id of a stored graph isomorphic to ``graph``, or ``None``.

        Uses the canonical hash as a pre-filter and confirms with the exact
        isomorphism test, so the answer is never a false positive. Callers
        probing many stores with the same graph (the sharded database asks
        every shard) pass the precomputed ``iso_hash`` to canonicalize once.
        """
        if iso_hash is None:
            iso_hash = canonical_hash(graph)
        for graph_id in self._by_hash.get(iso_hash, []):
            if is_isomorphic(self._entries[graph_id].graph, graph):
                return graph_id
        return None

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, graph_id: object) -> bool:
        return graph_id in self._entries

    def __iter__(self) -> Iterator[tuple[int, LabeledGraph]]:
        for graph_id, entry in self._entries.items():
            yield graph_id, entry.graph

    def __repr__(self) -> str:
        return f"<GraphDatabase {self.name!r}: {len(self)} graphs>"
