"""Query executor shim: index-pruned evaluation of similarity skylines.

.. deprecated:: 1.0
    :class:`SkylineExecutor` is a thin compatibility shim over the unified
    query API — the same pruning now lives in
    :class:`repro.api.backends.IndexedBackend` and is reached through
    ``repro.connect(db, backend="indexed")`` with a declarative
    :class:`repro.api.Query`. New code should use the session API; this
    class is kept so existing callers (and the reproduction benches)
    continue to work unchanged.

The pruning idea (unchanged, now implemented by the ``indexed`` backend):

1. compute each graph's *optimistic* (lower-bound) GCS vector from index
   features only — no solving;
2. visit candidates in ascending order of their optimistic vector sum
   (likely-similar graphs first, so strong dominators are found early);
3. before evaluating a candidate exactly, check whether some already
   evaluated exact vector Pareto-dominates the candidate's optimistic
   vector — such a candidate can never be in the skyline and its exact
   evaluation is skipped;
4. run a generic skyline algorithm over the surviving exact vectors.

Pruned graphs never enter the skyline, so the result is identical to the
unpruned computation (property-tested); only the work differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import (
    DistanceMeasure,
    default_measures,
    measure_names,
    resolve_measures,
)
from repro.core.diversity import DiversityResult, refine_by_diversity
from repro.core.gcs import CompoundSimilarity
from repro.db.database import GraphDatabase
from repro.db.stats import QueryStats


@dataclass
class ExecutionResult:
    """Outcome of an executed skyline query over a database.

    ``evaluated`` maps graph id to its exact GCS vector (pruned ids are
    absent); ``skyline_ids`` are the Pareto-optimal ids.
    """

    query: LabeledGraph
    measures: tuple[str, ...]
    evaluated: dict[int, CompoundSimilarity]
    skyline_ids: list[int]
    stats: QueryStats
    refinement: DiversityResult | None = None

    def skyline_graphs(self, database: GraphDatabase) -> list[LabeledGraph]:
        """Resolve the skyline ids against ``database``."""
        return [database.get(graph_id) for graph_id in self.skyline_ids]


class SkylineExecutor:
    """Executes skyline queries over a :class:`GraphDatabase`.

    .. deprecated:: 1.0
        Shim over :class:`repro.api.backends.IndexedBackend`; prefer
        ``repro.connect(database, backend="indexed")``.

    Parameters
    ----------
    database:
        The target database (indexed on construction; the index heals
        itself after database mutations).
    measures:
        GCS dimensions (default: the paper's three).
    algorithm:
        Generic skyline algorithm over exact vectors.
    use_index:
        Enable the lower-bound pruning; disabling it evaluates every
        graph (ablation A4).
    cache:
        Optional :class:`repro.db.cache.QueryCache` shared across queries.
    """

    def __init__(
        self,
        database: GraphDatabase,
        measures: "tuple | list | None" = None,
        algorithm: str = "bnl",
        tolerance: float = 0.0,
        use_index: bool = True,
        cache: "QueryCache | None" = None,
    ) -> None:
        from repro.api.backends import IndexedBackend
        from repro._deprecation import warn_deprecated_once

        warn_deprecated_once(
            "SkylineExecutor",
            "SkylineExecutor is deprecated; use "
            "repro.connect(database, backend='indexed') and the declarative "
            "Query API instead",
        )
        self.database = database
        self.measures: tuple[DistanceMeasure, ...] = (
            default_measures() if measures is None else resolve_measures(measures)
        )
        self.algorithm = algorithm
        self.tolerance = tolerance
        self.use_index = use_index
        self.cache = cache
        self._backend = IndexedBackend(database, use_index=use_index, cache=cache)

    @property
    def index(self):
        """The live feature index (owned by the ``indexed`` backend)."""
        return self._backend.index

    def refresh_index(self) -> None:
        """Force an index rebuild.

        Kept for API compatibility; the index now also refreshes itself
        automatically whenever the database's mutation version changes.
        """
        self._backend.refresh_index()

    def _candidate_order(self, query_features) -> list[tuple[int, tuple[float, ...]]]:
        """(id, optimistic vector) pairs, most promising first (legacy hook)."""
        self._backend._ensure_index()
        return self._backend._candidate_order(query_features, self.measures)

    def _spec(self, query: LabeledGraph, **changes) -> "GraphQuery":
        from repro.api.spec import GraphQuery

        return GraphQuery(
            graph=query,
            measures=self.measures,
            algorithm=self.algorithm,
            tolerance=self.tolerance,
            **changes,
        )

    def execute(
        self,
        query: LabeledGraph,
        refine_k: int | None = None,
        refine_method: str = "exhaustive",
    ) -> ExecutionResult:
        """Compute ``GSS(D, q)``, optionally refined to ``refine_k`` graphs."""
        answer = self._backend.run(self._spec(query, kind="skyline"))
        refinement = None
        if refine_k is not None and refine_k < len(answer.ids):
            refinement = refine_by_diversity(
                [self.database.get(graph_id) for graph_id in answer.ids],
                refine_k,
                method=refine_method,
            )
        return ExecutionResult(
            query=query,
            measures=measure_names(self.measures),
            evaluated=answer.vectors,
            skyline_ids=answer.ids,
            stats=answer.stats,
            refinement=refinement,
        )

    def skyband_search(self, query: LabeledGraph, k: int) -> list[int]:
        """Ids in the k-skyband of the GCS vectors (k = 1 is the skyline)."""
        answer = self._backend.run(self._spec(query, kind="skyband", k=k))
        return answer.ids

    def top_k_search(
        self,
        query: LabeledGraph,
        measure: "str | DistanceMeasure",
        k: int,
    ) -> list[tuple[int, float]]:
        """Index-accelerated single-measure top-k (ids with distances).

        Results match :func:`repro.core.topk.top_k_by_measure` exactly
        (ties broken by id).
        """
        answer = self._backend.run(
            self._spec(query, kind="topk", k=k, measure=measure)
        )
        return [(graph_id, answer.distances[graph_id]) for graph_id in answer.ids]

    def threshold_search(
        self,
        query: LabeledGraph,
        measure: "str | DistanceMeasure",
        threshold: float,
    ) -> list[tuple[int, float]]:
        """Range query: ids (with distances) within ``threshold`` of ``query``.

        Uses index lower bounds to skip provably-too-far graphs, then
        verifies the survivors exactly. Results are sorted by distance.
        """
        answer = self._backend.run(
            self._spec(query, kind="threshold", threshold=threshold, measure=measure)
        )
        return [(graph_id, answer.distances[graph_id]) for graph_id in answer.ids]
