"""Query executor: index-pruned evaluation of similarity skylines.

Naively, ``GSS(D, q)`` costs one exact GED and one exact MCS per database
graph. The executor cuts this down with a sound optimisation:

1. compute each graph's *optimistic* (lower-bound) GCS vector from index
   features only — no solving;
2. visit candidates in ascending order of their optimistic vector sum
   (likely-similar graphs first, so strong dominators are found early);
3. before evaluating a candidate exactly, check whether some already
   evaluated exact vector Pareto-dominates the candidate's optimistic
   vector. Because optimistic ≤ exact componentwise, domination of the
   optimistic vector implies domination of the true vector — the candidate
   can never be in the skyline and its exact evaluation is skipped;
4. run a generic skyline algorithm over the surviving exact vectors.

Pruned graphs never enter the skyline, so the result is identical to the
unpruned computation (property-tested); only the work differs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.features import GraphFeatures
from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import (
    DistanceMeasure,
    PairContext,
    default_measures,
    measure_names,
    resolve_measures,
)
from repro.core.diversity import DiversityResult, refine_by_diversity
from repro.core.gcs import CompoundSimilarity
from repro.db.database import GraphDatabase
from repro.db.index import FeatureIndex
from repro.db.stats import PhaseTimer, QueryStats
from repro.skyline import skyline as vector_skyline
from repro.skyline.utils import dominates


@dataclass
class ExecutionResult:
    """Outcome of an executed skyline query over a database.

    ``evaluated`` maps graph id to its exact GCS vector (pruned ids are
    absent); ``skyline_ids`` are the Pareto-optimal ids.
    """

    query: LabeledGraph
    measures: tuple[str, ...]
    evaluated: dict[int, CompoundSimilarity]
    skyline_ids: list[int]
    stats: QueryStats
    refinement: DiversityResult | None = None

    def skyline_graphs(self, database: GraphDatabase) -> list[LabeledGraph]:
        """Resolve the skyline ids against ``database``."""
        return [database.get(graph_id) for graph_id in self.skyline_ids]


class SkylineExecutor:
    """Executes skyline queries over a :class:`GraphDatabase`.

    Parameters
    ----------
    database:
        The target database (indexed on construction).
    measures:
        GCS dimensions (default: the paper's three).
    algorithm:
        Generic skyline algorithm over exact vectors.
    use_index:
        Enable the lower-bound pruning described in the module docstring;
        disabling it evaluates every graph (ablation A4).
    """

    def __init__(
        self,
        database: GraphDatabase,
        measures: "tuple | list | None" = None,
        algorithm: str = "bnl",
        tolerance: float = 0.0,
        use_index: bool = True,
        cache: "QueryCache | None" = None,
    ) -> None:
        from repro.db.cache import QueryCache

        self.database = database
        self.measures: tuple[DistanceMeasure, ...] = (
            default_measures() if measures is None else resolve_measures(measures)
        )
        self.algorithm = algorithm
        self.tolerance = tolerance
        self.use_index = use_index
        self.cache = cache
        self.index = FeatureIndex()
        for entry in database.entries():
            self.index.add(entry.graph_id, entry.features)

    def _evaluate_pair(
        self,
        graph_id: int,
        query: LabeledGraph,
        names: tuple[str, ...],
    ) -> tuple[tuple[float, ...], bool]:
        """Exact GCS vector of (graph_id, query); True when cache-served."""
        if self.cache is not None:
            query_hash = self.cache.query_hash(query)
            cached = self.cache.get(graph_id, query_hash, names)
            if cached is not None:
                return cached, True
        graph = self.database.get(graph_id)
        context = PairContext(graph, query)
        values = tuple(
            measure.distance(graph, query, context) for measure in self.measures
        )
        if self.cache is not None:
            self.cache.put(graph_id, query_hash, names, values)
        return values, False

    def refresh_index(self) -> None:
        """Re-sync the index after database mutations."""
        self.index = FeatureIndex()
        for entry in self.database.entries():
            self.index.add(entry.graph_id, entry.features)

    def execute(
        self,
        query: LabeledGraph,
        refine_k: int | None = None,
        refine_method: str = "exhaustive",
    ) -> ExecutionResult:
        """Compute ``GSS(D, q)``, optionally refined to ``refine_k`` graphs."""
        stats = QueryStats(database_size=len(self.database))
        query_features = GraphFeatures.of(query)
        names = measure_names(self.measures)

        with PhaseTimer(stats, "bounds"):
            order = self._candidate_order(query_features)

        evaluated: dict[int, CompoundSimilarity] = {}
        exact_vectors: list[tuple[float, ...]] = []
        with PhaseTimer(stats, "evaluate"):
            for graph_id, optimistic in order:
                stats.candidates_considered += 1
                if self.use_index and any(
                    dominates(vector, optimistic, self.tolerance)
                    for vector in exact_vectors
                ):
                    stats.pruned_by_index += 1
                    continue
                values, from_cache = self._evaluate_pair(graph_id, query, names)
                evaluated[graph_id] = CompoundSimilarity(values=values, measures=names)
                exact_vectors.append(values)
                if not from_cache:
                    stats.exact_evaluations += 1

        with PhaseTimer(stats, "skyline"):
            ids = list(evaluated)
            vectors = [evaluated[graph_id].values for graph_id in ids]
            member_positions = vector_skyline(
                vectors, algorithm=self.algorithm, tolerance=self.tolerance
            )
            skyline_ids = sorted(ids[position] for position in member_positions)
        stats.skyline_size = len(skyline_ids)

        refinement = None
        if refine_k is not None and refine_k < len(skyline_ids):
            with PhaseTimer(stats, "refine"):
                refinement = refine_by_diversity(
                    [self.database.get(graph_id) for graph_id in skyline_ids],
                    refine_k,
                    method=refine_method,
                )
        return ExecutionResult(
            query=query,
            measures=names,
            evaluated=evaluated,
            skyline_ids=skyline_ids,
            stats=stats,
            refinement=refinement,
        )

    def _candidate_order(
        self, query_features: GraphFeatures
    ) -> list[tuple[int, tuple[float, ...]]]:
        """(id, optimistic vector) pairs, most promising candidates first."""
        order = []
        for graph_id in self.database.ids():
            optimistic = self.index.optimistic_vector(
                graph_id, query_features, self.measures
            )
            order.append((graph_id, optimistic))
        order.sort(key=lambda item: (sum(item[1]), item[0]))
        return order

    def skyband_search(
        self,
        query: LabeledGraph,
        k: int,
    ) -> list[int]:
        """Ids in the k-skyband of the GCS vectors (k = 1 is the skyline).

        Pruning stays sound: a candidate whose *optimistic* vector is
        dominated by ``k`` exact vectors is dominated by at least ``k``
        graphs, and by transitivity so is anything it would have
        dominated — skipping it cannot change skyband membership.
        """
        from repro.skyline.skyband import k_skyband

        if k < 1:
            raise ValueError("k must be at least 1")
        query_features = GraphFeatures.of(query)
        order = self._candidate_order(query_features)
        names = measure_names(self.measures)
        evaluated_ids: list[int] = []
        exact_vectors: list[tuple[float, ...]] = []
        for graph_id, optimistic in order:
            if self.use_index:
                dominators = sum(
                    1
                    for vector in exact_vectors
                    if dominates(vector, optimistic, self.tolerance)
                )
                if dominators >= k:
                    continue
            graph = self.database.get(graph_id)
            context = PairContext(graph, query)
            values = tuple(
                measure.distance(graph, query, context) for measure in self.measures
            )
            evaluated_ids.append(graph_id)
            exact_vectors.append(values)
        member_positions = k_skyband(exact_vectors, k, tolerance=self.tolerance)
        return sorted(evaluated_ids[position] for position in member_positions)

    def top_k_search(
        self,
        query: LabeledGraph,
        measure: "str | DistanceMeasure",
        k: int,
    ) -> list[tuple[int, float]]:
        """Index-accelerated single-measure top-k (ids with distances).

        Classic bound-based pruning: candidates are visited in ascending
        lower-bound order; once ``k`` exact distances are known, any
        candidate whose lower bound exceeds the current k-th best distance
        can be skipped, and because bounds are sorted the scan stops at
        the first such candidate. Results match
        :func:`repro.core.topk.top_k_by_measure` exactly (ties broken by
        id).
        """
        from repro.measures.base import get_measure

        if k < 1:
            raise ValueError("k must be at least 1")
        resolved = get_measure(measure)
        query_features = GraphFeatures.of(query)
        bounded = sorted(
            (
                (self.index.optimistic_vector(graph_id, query_features, (resolved,))[0],
                 graph_id)
                for graph_id in self.database.ids()
            ),
        )
        best: list[tuple[float, int]] = []
        for lower_bound, graph_id in bounded:
            if self.use_index and len(best) >= k and lower_bound > best[-1][0]:
                break  # every later candidate has an even larger bound
            graph = self.database.get(graph_id)
            distance = resolved.distance(graph, query, PairContext(graph, query))
            best.append((distance, graph_id))
            best.sort()
            del best[k:]
        return [(graph_id, distance) for distance, graph_id in best]

    def threshold_search(
        self,
        query: LabeledGraph,
        measure: "str | DistanceMeasure",
        threshold: float,
    ) -> list[tuple[int, float]]:
        """Range query: ids (with distances) within ``threshold`` of ``query``.

        Uses index lower bounds to skip provably-too-far graphs, then
        verifies the survivors exactly. Results are sorted by distance.
        """
        from repro.measures.base import get_measure

        resolved = get_measure(measure)
        query_features = GraphFeatures.of(query)
        candidates = self.index.threshold_candidates(
            query_features, resolved, threshold
        )
        matches = []
        for graph_id in candidates:
            graph = self.database.get(graph_id)
            distance = resolved.distance(graph, query, PairContext(graph, query))
            if distance <= threshold:
                matches.append((graph_id, distance))
        matches.sort(key=lambda item: (item[1], item[0]))
        return matches
