"""Saving and loading graph databases as JSON documents.

The on-disk format is a single JSON object::

    {
      "name": "compounds",
      "entries": [
        {"id": 0, "metadata": {...}, "graph": {<graph payload>}},
        ...
      ]
    }

Graph payloads are :func:`repro.graph.serialization.graph_to_dict` output,
so ids/labels must be JSON-representable (strings/numbers). Loading
re-inserts entries in stored order; by default ids compact to ``0..n-1``
with the original ids preserved in the ``"original_id"`` metadata key
when they cannot be reassigned identically, while ``preserve_ids=True``
restores the stored ids exactly (what deterministic re-sharding needs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import SerializationError
from repro.db.database import GraphDatabase
from repro.graph.serialization import graph_from_dict, graph_to_dict


def database_to_dict(database: GraphDatabase) -> dict[str, Any]:
    """Plain-data payload for a whole database."""
    return {
        "name": database.name,
        "entries": [
            {
                "id": entry.graph_id,
                "metadata": entry.metadata,
                "graph": graph_to_dict(entry.graph),
            }
            for entry in database.entries()
        ],
    }


def database_from_dict(
    payload: dict[str, Any], preserve_ids: bool = False
) -> GraphDatabase:
    """Rebuild a database from :func:`database_to_dict` output.

    ``preserve_ids=True`` restores every entry under its stored id
    (gaps left by pre-save removals included) instead of compacting to
    ``0..n-1`` — the deterministic round-trip sharded deployments rely
    on, since hash placement is a pure function of the id.
    """
    try:
        database = GraphDatabase(name=payload.get("name", "graphdb"))
        for entry in payload["entries"]:
            graph_payload = dict(entry["graph"])
            graph_payload["vertices"] = [tuple(v) for v in graph_payload["vertices"]]
            graph_payload["edges"] = [tuple(e) for e in graph_payload["edges"]]
            graph = graph_from_dict(graph_payload)
            metadata = dict(entry.get("metadata", {}))
            forced = entry["id"] if preserve_ids and "id" in entry else None
            new_id = database.insert(graph, metadata=metadata, graph_id=forced)
            if new_id != entry.get("id", new_id):
                database.entry(new_id).metadata["original_id"] = entry["id"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed database payload: {exc}") from exc
    return database


def save_database(database: GraphDatabase, path: "str | Path") -> None:
    """Write ``database`` to ``path`` as JSON."""
    payload = database_to_dict(database)
    try:
        text = json.dumps(payload, indent=1)
    except TypeError as exc:
        raise SerializationError(
            f"database contains non-JSON-serializable ids/labels: {exc}"
        ) from exc
    Path(path).write_text(text, encoding="utf-8")


def load_database(
    path: "str | Path", preserve_ids: bool = False
) -> GraphDatabase:
    """Read a database previously written by :func:`save_database`.

    Ids compact to ``0..n-1`` by default (the historical behaviour,
    with ``original_id`` breadcrumbs); ``preserve_ids=True`` restores
    the stored ids exactly (see :func:`database_from_dict`).
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid database JSON: {exc}") from exc
    return database_from_dict(payload, preserve_ids=preserve_ids)
