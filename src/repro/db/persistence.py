"""Saving and loading graph databases as JSON documents.

The on-disk format is a single JSON object::

    {
      "name": "compounds",
      "entries": [
        {"id": 0, "metadata": {...}, "graph": {<graph payload>}},
        ...
      ]
    }

Graph payloads are :func:`repro.graph.serialization.graph_to_dict` output,
so ids/labels must be JSON-representable (strings/numbers). Loading
re-inserts entries in stored order; by default ids compact to ``0..n-1``
with the original ids preserved in the ``"original_id"`` metadata key
when they cannot be reassigned identically, while ``preserve_ids=True``
restores the stored ids exactly (what deterministic re-sharding needs).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import SerializationError
from repro.db.database import GraphDatabase
from repro.graph.serialization import graph_from_dict, graph_to_dict


def atomic_write_text(path: "str | Path", text: str) -> None:
    """Replace ``path``'s contents all-or-nothing.

    Writes to a temp file *in the target directory* (so the rename never
    crosses filesystems), fsyncs it, ``os.replace``s it into place, then
    fsyncs the directory — a crash at any instant leaves either the old
    file or the new one, never a truncated hybrid. Used by snapshot
    saves and every WAL control file.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp_name)
        raise
    dir_fd = os.open(target.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def database_to_dict(database: GraphDatabase) -> dict[str, Any]:
    """Plain-data payload for a whole database."""
    return {
        "name": database.name,
        "entries": [
            {
                "id": entry.graph_id,
                "metadata": entry.metadata,
                "graph": graph_to_dict(entry.graph),
            }
            for entry in database.entries()
        ],
    }


def database_from_dict(
    payload: dict[str, Any], preserve_ids: bool = False
) -> GraphDatabase:
    """Rebuild a database from :func:`database_to_dict` output.

    ``preserve_ids=True`` restores every entry under its stored id
    (gaps left by pre-save removals included) instead of compacting to
    ``0..n-1`` — the deterministic round-trip sharded deployments rely
    on, since hash placement is a pure function of the id.
    """
    try:
        database = GraphDatabase(name=payload.get("name", "graphdb"))
        for entry in payload["entries"]:
            graph_payload = dict(entry["graph"])
            graph_payload["vertices"] = [tuple(v) for v in graph_payload["vertices"]]
            graph_payload["edges"] = [tuple(e) for e in graph_payload["edges"]]
            graph = graph_from_dict(graph_payload)
            metadata = dict(entry.get("metadata", {}))
            forced = entry["id"] if preserve_ids and "id" in entry else None
            new_id = database.insert(graph, metadata=metadata, graph_id=forced)
            if new_id != entry.get("id", new_id):
                database.entry(new_id).metadata["original_id"] = entry["id"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed database payload: {exc}") from exc
    return database


def save_database(database: GraphDatabase, path: "str | Path") -> None:
    """Write ``database`` to ``path`` as JSON, atomically.

    The serialized payload lands via temp-file + ``os.replace``
    (:func:`atomic_write_text`), so a crash mid-save leaves the previous
    snapshot intact instead of a truncated file.
    """
    payload = database_to_dict(database)
    try:
        text = json.dumps(payload, indent=1)
    except TypeError as exc:
        raise SerializationError(
            f"database contains non-JSON-serializable ids/labels: {exc}"
        ) from exc
    atomic_write_text(path, text)


def load_database(
    path: "str | Path", preserve_ids: bool = False
) -> GraphDatabase:
    """Read a database previously written by :func:`save_database`.

    Ids compact to ``0..n-1`` by default (the historical behaviour,
    with ``original_id`` breadcrumbs); ``preserve_ids=True`` restores
    the stored ids exactly (see :func:`database_from_dict`).
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid database JSON: {exc}") from exc
    return database_from_dict(payload, preserve_ids=preserve_ids)
