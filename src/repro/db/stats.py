"""Execution statistics for similarity-skyline queries.

Collected by the executor and surfaced in benches: how many candidates the
index pruned, how many exact evaluations ran, and wall-clock phase
timings. The counters make the effect of the pruning ablation (bench A4)
directly observable rather than inferred from timings alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class QueryStats:
    """Counters and timings for one executed query."""

    database_size: int = 0
    candidates_considered: int = 0
    pruned_by_index: int = 0
    #: Of ``pruned_by_index``, how many were removed by a candidate
    #: source's batched pre-filter (one vectorized pass) rather than by
    #: a per-candidate cascade stage.
    pruned_by_batch: int = 0
    exact_evaluations: int = 0
    served_from_cache: int = 0
    skyline_size: int = 0
    #: Of ``pruned_by_index``, per-stage attribution keyed by the stage's
    #: ``name`` (e.g. ``"pareto-bound"``); batched pre-filter removals are
    #: booked under ``"batch-prefilter"``. Sums to ``pruned_by_index``.
    pruned_by_stage: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Adaptive-planner decision record (``None`` unless the query ran on
    #: the ``auto`` backend): chosen source/stages/evaluator, predicted vs
    #: observed per-stage selectivities, and any mid-query re-plan events.
    planner: dict[str, object] | None = None
    #: Scatter-gather breakdown: one row per shard (``shard``, ``size``,
    #: ``candidates``, ``pruned``, ``evaluated``, ``served``), in shard
    #: order, empty shards included. ``None`` for monolithic runs.
    per_shard: list[dict[str, int]] | None = None
    #: Persistent worker-pool telemetry (``None`` for serial runs):
    #: ``workers``, ``attach`` (per-kind counts — ``warm``/``delta``/
    #: ``cold`` for the parent-side shared-memory attachment, ``broken``
    #: when tasks shipped graphs inline, ``serial`` for the in-process
    #: fallback, plus ``worker-cold``/``worker-delta`` when a worker had
    #: to materialize), ``chunks`` shipped, ``waves`` drained,
    #: ``frontier_pruned`` (candidates eliminated by shared exact
    #: vectors instead of evaluation), ``published`` (vectors workers
    #: posted to the shared frontier), ``respawns`` (worker deaths
    #: recovered during this query).
    pool: dict[str, object] | None = None
    #: Anytime-execution telemetry (``None`` unless the query carried a
    #: budget): ``passes`` (budgeted evaluation passes run), ``refined``
    #: (passes beyond the first, i.e. progressive refinement work),
    #: ``settled`` (candidates whose intervals collapsed to exact
    #: values), ``interval_pruned`` (candidates excluded with their
    #: intervals still open — they provably cannot change the answer),
    #: ``starved`` (candidates never evaluated before the budget ran
    #: out), ``budget_spent_ms`` (wall clock consumed).
    anytime: dict[str, object] | None = None

    def count_prune(self, stage_name: str, count: int = 1) -> None:
        """Attribute ``count`` cascade prunes to ``stage_name``."""
        self.pruned_by_stage[stage_name] = (
            self.pruned_by_stage.get(stage_name, 0) + count
        )

    @property
    def pruning_ratio(self) -> float:
        """Fraction of candidates skipped thanks to index bounds."""
        if self.candidates_considered == 0:
            return 0.0
        return self.pruned_by_index / self.candidates_considered

    @property
    def source_ms(self) -> float:
        """Wall-clock spent enumerating/bounding candidates, in ms."""
        return (
            self.phase_seconds.get("source", 0.0)
            + self.phase_seconds.get("bounds", 0.0)
        ) * 1000.0

    @property
    def cascade_ms(self) -> float:
        """Wall-clock spent in per-candidate cascade stages, in ms."""
        return self.phase_seconds.get("cascade", 0.0) * 1000.0

    @property
    def evaluate_ms(self) -> float:
        """Wall-clock spent on exact evaluations (incl. drain), in ms."""
        return self.phase_seconds.get("evaluate", 0.0) * 1000.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        timings = ", ".join(
            f"{phase}={seconds * 1000:.1f}ms"
            for phase, seconds in self.phase_seconds.items()
        )
        cached = (
            f" cached={self.served_from_cache}" if self.served_from_cache else ""
        )
        batched = (
            f" (batch={self.pruned_by_batch})" if self.pruned_by_batch else ""
        )
        stages = ""
        if self.pruned_by_stage:
            breakdown = ",".join(
                f"{name}:{count}"
                for name, count in sorted(self.pruned_by_stage.items())
            )
            stages = f" stages[{breakdown}]"
        planner = ""
        if self.planner is not None:
            planner = f" plan={self.planner.get('summary', 'auto')}"
        sharded = (
            f" shards={len(self.per_shard)}" if self.per_shard is not None else ""
        )
        pool = ""
        if self.pool is not None:
            attach = ",".join(
                f"{kind}:{count}"
                for kind, count in sorted(self.pool.get("attach", {}).items())
            )
            pool = (
                f" pool[workers={self.pool.get('workers', 0)}"
                f" attach={attach or 'none'}"
                f" chunks={self.pool.get('chunks', 0)}"
                f" waves={self.pool.get('waves', 0)}"
                f" frontier_pruned={self.pool.get('frontier_pruned', 0)}"
                f" published={self.pool.get('published', 0)}]"
            )
        anytime = ""
        if self.anytime is not None:
            anytime = (
                f" anytime[passes={self.anytime.get('passes', 0)}"
                f" refined={self.anytime.get('refined', 0)}"
                f" settled={self.anytime.get('settled', 0)}"
                f" interval_pruned={self.anytime.get('interval_pruned', 0)}"
                f" starved={self.anytime.get('starved', 0)}"
                f" spent={self.anytime.get('budget_spent_ms', 0)}ms]"
            )
        return (
            f"n={self.database_size} evaluated={self.exact_evaluations} "
            f"pruned={self.pruned_by_index}{batched}{stages}{cached}"
            f"{sharded}{pool}{anytime}{planner} "
            f"skyline={self.skyline_size} [{timings}]"
        )


class PhaseTimer:
    """Context manager recording a phase duration into ``stats``."""

    def __init__(self, stats: QueryStats, phase: str) -> None:
        self._stats = stats
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        previous = self._stats.phase_seconds.get(self._phase, 0.0)
        self._stats.phase_seconds[self._phase] = previous + elapsed
