"""Durable write-ahead log with crash recovery and point-in-time restore.

The served store's durability layer: every committed mutation is
appended — *before* it is applied — to an append-only JSON-lines log, so
a process killed at any instant can be rebuilt to its exact pre-crash
state by replaying the log over the last snapshot. The log speaks the
existing :mod:`repro.api.ops` mutation codec: one record per committed
op, extended with the replay bookkeeping the codec ignores::

    {"lsn": 7, "version": 12, "crc": 2868545276,
     "op": {"op": "add", "handle": "g3", "graph": {...}, "graph_id": 5}}

* ``lsn`` — log sequence number, globally monotone across segments;
* ``version`` — the database's mutation counter when the op committed;
* ``crc`` — CRC32 of the record's canonical JSON (sans ``crc``), the
  torn-write detector;
* ``op`` — a :func:`repro.api.ops.mutation_from_dict`-compatible payload
  plus the committed ``graph_id`` (and ``new_graph_id`` for relabels),
  so replay reproduces the exact id assignment and shard placement.

Layout of a log directory (one :class:`DurableLog`)::

    data_dir/
      MANIFEST.json      # format version + segment count
      snapshot.json      # atomic snapshot: database + handles + base_lsn
      wal-000.jsonl      # records with lsn > base_lsn, one per shard
      wal-001.jsonl

The log is *partitioned per shard*: a :class:`~repro.shard.store.
ShardedGraphDatabase` with N shards routes each record to the segment of
the shard the op touches, spreading append pressure across files.
Recovery merges all segments by LSN, so segment routing is an I/O
concern, never a correctness one.

Sync policies (:class:`SyncPolicy`) trade latency for the durability
each append guarantees when it returns:

* ``always`` — flush + fsync per record: an acknowledged mutation
  survives process kill *and* OS crash;
* ``interval`` / ``interval:<seconds>`` — flush to the OS per record,
  fsync at most every interval: survives process kill, may lose the
  last interval on OS crash;
* ``none`` — user-space buffered: fastest, may lose (or tear) the
  buffered tail even on process kill.

Opening a log repairs it: a partial or checksum-failed *final* record
per segment is truncated (the torn tail a crash legitimately leaves),
records at or below the snapshot's ``base_lsn`` are dropped (an
interrupted compaction leaves them), and records past the first gap in
the merged LSN sequence are dropped (a lost buffered tail in one
segment orphans later records in others). A bad record with valid
records *after* it in the same segment is mid-log corruption and raises
:class:`~repro.errors.WalCorruptionError` — lost history is never
papered over.

Replay is idempotent by construction — recovering twice rebuilds the
same state because recovery never writes to the log — and
:meth:`DurableLog.recover` takes ``upto_lsn`` for point-in-time restore
to any committed prefix.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import QueryError, SerializationError, WalCorruptionError
from repro.db.database import GraphDatabase
from repro.db.persistence import (
    atomic_write_text,
    database_from_dict,
    database_to_dict,
)
from repro.graph.serialization import graph_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.store import ShardedGraphDatabase

MANIFEST_NAME = "MANIFEST.json"
SNAPSHOT_NAME = "snapshot.json"
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Sync policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SyncPolicy:
    """When appended records are pushed toward stable storage."""

    mode: str  # "always" | "interval" | "none"
    interval: float = 0.1

    @classmethod
    def parse(cls, spec: "str | SyncPolicy") -> "SyncPolicy":
        """``"always"``, ``"none"``, ``"interval"`` or ``"interval:0.25"``."""
        if isinstance(spec, SyncPolicy):
            return spec
        name, _, arg = str(spec).partition(":")
        if name == "interval":
            try:
                interval = float(arg) if arg else 0.1
            except ValueError as exc:
                raise QueryError(
                    f"malformed sync interval {arg!r} in {spec!r}"
                ) from exc
            if interval <= 0:
                raise QueryError("sync interval must be positive")
            return cls("interval", interval)
        if name in ("always", "none") and not arg:
            return cls(name)
        raise QueryError(
            f"unknown sync policy {spec!r}; "
            "expected always, interval[:seconds], or none"
        )


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
def _canonical(payload: dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def encode_record(lsn: int, version: int, op_payload: dict[str, Any]) -> bytes:
    """One JSON-lines WAL record, CRC32-sealed, newline-terminated."""
    body = {"lsn": lsn, "version": version, "op": op_payload}
    try:
        canonical = _canonical(body)
        sealed = dict(body)
        sealed["crc"] = zlib.crc32(canonical) & 0xFFFFFFFF
        return _canonical(sealed) + b"\n"
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"mutation is not WAL-serializable: {exc}"
        ) from exc


def decode_record(line: bytes) -> dict[str, Any]:
    """Decode + checksum one record line; raises on any mismatch.

    The checksum is recomputed over the canonical re-serialization of
    the decoded body, so a single flipped byte anywhere in the line —
    including inside the graph payload — fails the record.
    """
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WalCorruptionError(f"undecodable WAL record: {exc}") from exc
    if not isinstance(payload, dict) or "crc" not in payload:
        raise WalCorruptionError("WAL record is not a sealed object")
    crc = payload.pop("crc")
    if zlib.crc32(_canonical(payload)) & 0xFFFFFFFF != crc:
        raise WalCorruptionError(
            f"WAL record checksum mismatch at lsn {payload.get('lsn')!r}"
        )
    if (
        not isinstance(payload.get("lsn"), int)
        or not isinstance(payload.get("version"), int)
        or not isinstance(payload.get("op"), dict)
    ):
        raise WalCorruptionError("WAL record is missing lsn/version/op fields")
    return payload


# ----------------------------------------------------------------------
# Recovery result
# ----------------------------------------------------------------------
@dataclass
class RecoveredState:
    """A store rebuilt from snapshot + replayed log records."""

    database: GraphDatabase
    handle_to_id: dict[str, int]
    id_to_handle: dict[int, str]
    #: LSN of the last replayed record (== snapshot base when none).
    last_lsn: int
    #: Snapshot base LSN the replay started from.
    base_lsn: int
    #: Records replayed on top of the snapshot.
    replayed: int


@dataclass
class RepairReport:
    """What opening the log had to clean up (all zero on a clean close)."""

    torn_records: int = 0
    stale_records: int = 0
    orphaned_records: int = 0

    @property
    def clean(self) -> bool:
        return not (
            self.torn_records or self.stale_records or self.orphaned_records
        )


@dataclass
class _ScannedRecord:
    record: dict[str, Any]
    segment: int
    end_offset: int  # byte offset just past this record's newline


# ----------------------------------------------------------------------
# The log
# ----------------------------------------------------------------------
class DurableLog:
    """One durable mutation log over a data directory.

    Use :meth:`open` (which repairs torn tails), then either
    :meth:`recover` an existing store or :meth:`initialize` a fresh one,
    then attach to a database via
    :meth:`~repro.db.database.GraphDatabase.attach_wal` so every
    mutation appends before it applies.
    """

    def __init__(
        self,
        data_dir: "str | Path",
        sync: "str | SyncPolicy" = "always",
        segments: int = 1,
        compact_every: int = 0,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.policy = SyncPolicy.parse(sync)
        if segments < 1:
            raise QueryError(f"a WAL needs >= 1 segments, got {segments}")
        self.segments = segments
        #: Auto-compact after this many appends (0 disables).
        self.compact_every = compact_every
        self.repair = RepairReport()
        self._files: dict[int, Any] = {}
        self._dirty: set[int] = set()
        self._last_fsync = time.monotonic()
        self._suppress = 0
        self._closed = False
        self._next_lsn = 1
        self._base_lsn = 0
        self._ops_since_compact = 0
        #: (lsn, segment index, encoded length) of the newest append,
        #: kept so :meth:`annul` can roll it back if its apply fails.
        self._last_append: tuple[int, int, int] | None = None

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def open(
        cls,
        data_dir: "str | Path",
        sync: "str | SyncPolicy" = "always",
        segments: int | None = None,
        compact_every: int = 0,
    ) -> "DurableLog":
        """Open (and repair) the log at ``data_dir``, creating it if new.

        ``segments`` is fixed at creation and read back from the
        manifest afterwards; passing a conflicting count for an existing
        log is an error (segment routing is per-shard, and a log cannot
        silently change shape).
        """
        path = Path(data_dir)
        path.mkdir(parents=True, exist_ok=True)
        manifest_path = path / MANIFEST_NAME
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text("utf-8"))
                stored = int(manifest["segments"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise WalCorruptionError(
                    f"malformed WAL manifest {manifest_path}: {exc}"
                ) from exc
            if segments is not None and segments != stored:
                raise QueryError(
                    f"WAL at {path} has {stored} segments; "
                    f"cannot reopen with {segments}"
                )
            log = cls(path, sync, stored, compact_every)
            log._repair_on_open()
        else:
            log = cls(path, sync, segments or 1, compact_every)
        return log

    @property
    def has_state(self) -> bool:
        """Whether the directory holds an initialized log."""
        return (self.data_dir / MANIFEST_NAME).exists()

    @property
    def last_lsn(self) -> int:
        """LSN of the last appended record (0 before any append)."""
        return self._next_lsn - 1

    @property
    def base_lsn(self) -> int:
        """LSN already folded into the snapshot."""
        return self._base_lsn

    @property
    def ops_since_compact(self) -> int:
        return self._ops_since_compact

    def segment_path(self, segment: int) -> Path:
        return self.data_dir / f"wal-{segment:03d}.jsonl"

    def close(self) -> None:
        """Flush, fsync and release every segment file."""
        if self._closed:
            return
        self.sync()
        for handle in self._files.values():
            handle.close()
        self._files.clear()
        self._closed = True

    def __enter__(self) -> "DurableLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- append path -----------------------------------------------------
    @property
    def suppressed(self) -> bool:
        """True while inside :meth:`suppress` (compound-op sub-steps)."""
        return self._suppress > 0

    @contextlib.contextmanager
    def suppress(self) -> Iterator[None]:
        """Silence database-level hooks while a higher layer logs the
        compound op itself (one ``relabel`` record instead of its
        remove + insert halves; replay instead of re-log)."""
        self._suppress += 1
        try:
            yield
        finally:
            self._suppress -= 1

    def append(
        self, op_payload: dict[str, Any], version: int, segment: int = 0
    ) -> int:
        """Append one committed-op record; returns its LSN.

        Must be called *before* the op is applied (write-ahead), with
        applicability already validated so the record cannot describe a
        mutation that then fails. Durability on return is whatever the
        sync policy promises.
        """
        if self._closed:
            raise QueryError("cannot append to a closed WAL")
        lsn = self._next_lsn
        line = encode_record(lsn, version, op_payload)
        index = segment % self.segments
        handle = self._segment_file(index)
        handle.write(line)
        self._next_lsn += 1
        self._ops_since_compact += 1
        self._last_append = (lsn, index, len(line))
        self._after_write(index, handle)
        return lsn

    def annul(self, lsn: int) -> None:
        """Roll the newest record back out of the log.

        The write-ahead contract appends before applying; if the apply
        then fails the record describes a mutation that never happened,
        and leaving it behind would replay a phantom write (and, with
        later appends stacked on top, corrupt recovery outright). Only
        the most recent append can be annulled — its bytes are truncated
        from the segment and its LSN is released, as if the append never
        occurred.
        """
        if self._closed:
            raise QueryError("cannot annul a record of a closed WAL")
        if self._last_append is None or self._last_append[0] != lsn:
            raise QueryError(
                f"cannot annul lsn {lsn}: only the most recent append "
                "can be rolled back"
            )
        _, index, length = self._last_append
        handle = self._files[index]
        handle.flush()
        size = os.fstat(handle.fileno()).st_size
        os.ftruncate(handle.fileno(), max(0, size - length))
        os.fsync(handle.fileno())
        self._dirty.discard(index)
        self._next_lsn = lsn
        self._ops_since_compact = max(0, self._ops_since_compact - 1)
        self._last_append = None

    def sync(self) -> None:
        """Flush + fsync every dirty segment (regardless of policy)."""
        for index in sorted(self._dirty | set(self._files)):
            handle = self._files.get(index)
            if handle is not None:
                handle.flush()
                os.fsync(handle.fileno())
        self._dirty.clear()
        self._last_fsync = time.monotonic()

    def should_compact(self) -> bool:
        return 0 < self.compact_every <= self._ops_since_compact

    def _segment_file(self, index: int):
        handle = self._files.get(index)
        if handle is None:
            handle = open(self.segment_path(index), "ab")
            self._files[index] = handle
        return handle

    def _after_write(self, index: int, handle: Any) -> None:
        if self.policy.mode == "always":
            handle.flush()
            os.fsync(handle.fileno())
        elif self.policy.mode == "interval":
            handle.flush()
            self._dirty.add(index)
            if time.monotonic() - self._last_fsync >= self.policy.interval:
                self.sync()
        # "none": leave bytes in the user-space buffer.

    # -- snapshots -------------------------------------------------------
    def initialize(
        self, database: GraphDatabase, handle_to_id: dict[str, int]
    ) -> None:
        """First-time setup: write the manifest and the initial snapshot.

        The snapshot makes a crash *before the first mutation* already
        recoverable — a fresh served corpus is durable from the moment
        the log attaches, not from its first compaction.
        """
        if self.has_state:
            raise QueryError(
                f"WAL at {self.data_dir} is already initialized; "
                "recover() it instead"
            )
        atomic_write_text(
            self.data_dir / MANIFEST_NAME,
            json.dumps(
                {"format": FORMAT_VERSION, "segments": self.segments},
                indent=1,
            ),
        )
        self.compact_from(database, handle_to_id)

    def compact_from(
        self, database: GraphDatabase, handle_to_id: dict[str, int]
    ) -> None:
        """Fold the log into a fresh snapshot + empty segments.

        The snapshot lands atomically (temp file + ``os.replace``)
        *before* segments reset, and replay skips records at or below
        ``base_lsn`` — so a crash anywhere inside compaction leaves a
        directory that still recovers to the exact same state.
        """
        payload = _snapshot_payload(database, handle_to_id, self.last_lsn)
        try:
            text = json.dumps(payload, indent=1)
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"database is not snapshot-serializable: {exc}"
            ) from exc
        atomic_write_text(self.data_dir / SNAPSHOT_NAME, text)
        self._base_lsn = self.last_lsn
        self._reset_segments()
        self._ops_since_compact = 0

    def _reset_segments(self) -> None:
        for index, handle in list(self._files.items()):
            handle.close()
            del self._files[index]
        self._dirty.clear()
        self._last_append = None
        for index in range(self.segments):
            path = self.segment_path(index)
            if path.exists():
                atomic_write_text(path, "")

    # -- reading + repair ------------------------------------------------
    def _scan_segment(
        self, index: int
    ) -> tuple[list[_ScannedRecord], int, int]:
        """Decode one segment; returns (records, valid_bytes, torn_count).

        Only the *final* record may be damaged (partial line, bad
        checksum, trailing garbage) — that is the torn tail a crash
        leaves and it is truncated. Damage followed by further valid
        records is mid-log corruption and raises.
        """
        path = self.segment_path(index)
        if not path.exists():
            return [], 0, 0
        data = path.read_bytes()
        records: list[_ScannedRecord] = []
        offset = 0
        last_lsn = None
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                return records, offset, 1  # partial final line
            line = data[offset:newline]
            try:
                record = decode_record(line)
            except WalCorruptionError as exc:
                if _any_valid_record(data[newline + 1:]):
                    raise WalCorruptionError(
                        f"mid-log corruption in {path.name} at byte "
                        f"{offset}: {exc}"
                    ) from exc
                return records, offset, 1
            if last_lsn is not None and record["lsn"] <= last_lsn:
                raise WalCorruptionError(
                    f"non-monotone LSN {record['lsn']} after {last_lsn} "
                    f"in {path.name}"
                )
            last_lsn = record["lsn"]
            records.append(_ScannedRecord(record, index, newline + 1))
            offset = newline + 1
        return records, offset, 0

    def _repair_on_open(self) -> None:
        """Scan all segments, truncate torn tails, drop stale and
        orphaned records, and position ``next_lsn``."""
        self._base_lsn = self._snapshot_base_lsn()
        per_segment: list[list[_ScannedRecord]] = []
        for index in range(self.segments):
            records, valid_bytes, torn = self._scan_segment(index)
            path = self.segment_path(index)
            if torn:
                self.repair.torn_records += torn
                _truncate_file(path, valid_bytes)
            stale = [r for r in records if r.record["lsn"] <= self._base_lsn]
            if stale:
                # Interrupted compaction: rewrite keeping only the live
                # suffix (records are LSN-ordered within a segment). The
                # kept records' end offsets move in the rewritten file,
                # so recompute them — the orphan cut below truncates by
                # offset and must see post-rewrite positions.
                self.repair.stale_records += len(stale)
                live = [r for r in records if r.record["lsn"] > self._base_lsn]
                chunks: list[bytes] = []
                offset = 0
                records = []
                for r in live:
                    line = encode_record(
                        r.record["lsn"], r.record["version"], r.record["op"]
                    )
                    chunks.append(line)
                    offset += len(line)
                    records.append(_ScannedRecord(r.record, index, offset))
                atomic_write_text(path, b"".join(chunks).decode("utf-8"))
            per_segment.append(records)

        merged = sorted(
            (r for records in per_segment for r in records),
            key=lambda r: r.record["lsn"],
        )
        expected = self._base_lsn + 1
        prefix_len = 0
        for scanned in merged:
            if scanned.record["lsn"] != expected:
                break
            expected += 1
            prefix_len += 1
        orphans = merged[prefix_len:]
        if orphans:
            # A lost buffered tail in one segment orphans later records
            # in the others; truncate each segment at its first orphan.
            self.repair.orphaned_records += len(orphans)
            cut: dict[int, int] = {}
            for scanned in orphans:
                start = scanned.end_offset - len(
                    encode_record(
                        scanned.record["lsn"],
                        scanned.record["version"],
                        scanned.record["op"],
                    )
                )
                cut[scanned.segment] = min(
                    cut.get(scanned.segment, start), start
                )
            for index, valid_bytes in cut.items():
                _truncate_file(self.segment_path(index), valid_bytes)
        self._next_lsn = self._base_lsn + prefix_len + 1

    def _snapshot_base_lsn(self) -> int:
        path = self.data_dir / SNAPSHOT_NAME
        if not path.exists():
            return 0
        try:
            return int(json.loads(path.read_text("utf-8"))["base_lsn"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise WalCorruptionError(
                f"malformed WAL snapshot {path}: {exc}"
            ) from exc

    def records(self) -> list[dict[str, Any]]:
        """All live records, merged across segments in LSN order."""
        merged: list[_ScannedRecord] = []
        for index in range(self.segments):
            records, _, torn = self._scan_segment(index)
            if torn:
                raise WalCorruptionError(
                    f"segment {index} has a torn tail; reopen the log to "
                    "repair it before reading"
                )
            merged.extend(records)
        merged.sort(key=lambda r: r.record["lsn"])
        return [r.record for r in merged if r.record["lsn"] > self._base_lsn]

    # -- recovery --------------------------------------------------------
    def recover(self, upto_lsn: int | None = None) -> RecoveredState:
        """Rebuild the store: snapshot + replay of (a prefix of) the log.

        ``upto_lsn`` is the point-in-time knob: replay stops after that
        LSN (it must be at or past the snapshot base — earlier history
        is compacted away — and at most the last live record).
        Recovery only reads, so it is idempotent: recovering twice
        yields equal states, and the live log keeps accepting appends
        afterwards.
        """
        snapshot_path = self.data_dir / SNAPSHOT_NAME
        if not snapshot_path.exists():
            raise QueryError(
                f"WAL at {self.data_dir} has no snapshot; initialize() a "
                "fresh log before recovering"
            )
        try:
            snapshot = json.loads(snapshot_path.read_text("utf-8"))
        except json.JSONDecodeError as exc:
            raise WalCorruptionError(
                f"malformed WAL snapshot {snapshot_path}: {exc}"
            ) from exc
        base_lsn = int(snapshot.get("base_lsn", 0))
        if upto_lsn is not None:
            if upto_lsn < base_lsn:
                raise QueryError(
                    f"cannot restore to lsn {upto_lsn}: history up to "
                    f"lsn {base_lsn} is compacted into the snapshot"
                )
            if upto_lsn > self.last_lsn:
                raise QueryError(
                    f"cannot restore to lsn {upto_lsn}: the log ends at "
                    f"lsn {self.last_lsn}"
                )
        database, handle_to_id, id_to_handle = _restore_snapshot(snapshot)
        last = base_lsn
        replayed = 0
        for record in self.records():
            if upto_lsn is not None and record["lsn"] > upto_lsn:
                break
            _replay_record(database, record["op"], handle_to_id, id_to_handle)
            last = record["lsn"]
            replayed += 1
        return RecoveredState(
            database=database,
            handle_to_id=handle_to_id,
            id_to_handle=id_to_handle,
            last_lsn=last,
            base_lsn=base_lsn,
            replayed=replayed,
        )


def _any_valid_record(data: bytes) -> bool:
    for line in data.split(b"\n"):
        if not line:
            continue
        try:
            decode_record(line)
            return True
        except WalCorruptionError:
            continue
    return False


def _truncate_file(path: Path, valid_bytes: int) -> None:
    with open(path, "rb+") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


# ----------------------------------------------------------------------
# Snapshot payloads
# ----------------------------------------------------------------------
def _snapshot_payload(
    database: GraphDatabase, handle_to_id: dict[str, int], base_lsn: int
) -> dict[str, Any]:
    from repro.shard.store import ShardedGraphDatabase

    payload: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "base_lsn": base_lsn,
        "name": database.name,
        "next_id": database.next_id,
        "handles": dict(handle_to_id),
    }
    if isinstance(database, ShardedGraphDatabase):
        payload["kind"] = "sharded"
        payload["placement"] = database.placement.name
        payload["shard_databases"] = [
            database_to_dict(shard) for shard in database.shards
        ]
    else:
        payload["kind"] = "mono"
        payload["database"] = database_to_dict(database)
    return payload


def _restore_snapshot(
    snapshot: dict[str, Any],
) -> tuple[GraphDatabase, dict[str, int], dict[int, str]]:
    try:
        kind = snapshot["kind"]
        if kind == "sharded":
            database: GraphDatabase = _restore_sharded(snapshot)
        elif kind == "mono":
            database = database_from_dict(
                snapshot["database"], preserve_ids=True
            )
        else:
            raise WalCorruptionError(f"unknown snapshot kind {kind!r}")
        database.reserve_ids(int(snapshot.get("next_id", 0)))
        handle_to_id = {
            str(handle): int(graph_id)
            for handle, graph_id in snapshot.get("handles", {}).items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise WalCorruptionError(f"malformed WAL snapshot: {exc}") from exc
    # Handles pointing at graphs the snapshot no longer holds would be
    # a snapshot bug; drop them rather than resurrect dead ids.
    handle_to_id = {
        handle: graph_id
        for handle, graph_id in handle_to_id.items()
        if graph_id in database
    }
    id_to_handle = {graph_id: handle for handle, graph_id in handle_to_id.items()}
    return database, handle_to_id, id_to_handle


def _restore_sharded(snapshot: dict[str, Any]) -> "ShardedGraphDatabase":
    from repro.shard.store import ShardedGraphDatabase

    shard_payloads = snapshot["shard_databases"]
    database = ShardedGraphDatabase(
        shards=max(1, len(shard_payloads)),
        placement=snapshot.get("placement", "hash"),
        name=snapshot.get("name", "graphdb"),
    )
    # Per-shard payloads lose the global interleaving, but ids are
    # allocated monotonically and never reused, so ascending id order
    # *is* global insertion order.
    entries = []
    for index, payload in enumerate(shard_payloads):
        shard = database_from_dict(payload, preserve_ids=True)
        for entry in shard.entries():
            entries.append((entry.graph_id, index, entry))
    for graph_id, index, entry in sorted(entries, key=lambda item: item[0]):
        database.restore_entry(
            index, entry.graph, entry.metadata, graph_id, copy=False
        )
    return database


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def _graph_from_payload(payload: dict[str, Any]):
    payload = dict(payload)
    payload["vertices"] = [tuple(v) for v in payload.get("vertices", [])]
    payload["edges"] = [tuple(e) for e in payload.get("edges", [])]
    return graph_from_dict(payload)


def _replay_record(
    database: GraphDatabase,
    op_payload: dict[str, Any],
    handle_to_id: dict[str, int],
    id_to_handle: dict[int, str],
) -> None:
    """Re-apply one logged op exactly as it originally committed.

    Committed ids are forced from the record, so placement-, index- and
    handle-visible state all land where they originally did; handle-less
    records (raw ``insert``/``remove`` calls below the op layer) derive
    server-style name handles.
    """
    try:
        op = op_payload["op"]
        if op == "add":
            graph = _graph_from_payload(op_payload["graph"])
            graph_id = database.insert(
                graph,
                metadata=op_payload.get("metadata") or None,
                graph_id=op_payload.get("graph_id"),
            )
            handle = op_payload.get("handle")
            if handle is None:
                handle = graph.name or f"#{graph_id}"
            if handle not in handle_to_id:
                handle_to_id[handle] = graph_id
                id_to_handle[graph_id] = handle
        elif op == "remove":
            graph_id = op_payload.get("graph_id")
            if graph_id is None:
                graph_id = handle_to_id[op_payload["handle"]]
            database.remove(graph_id)
            handle = id_to_handle.pop(graph_id, None)
            if handle is not None:
                handle_to_id.pop(handle, None)
        elif op == "relabel":
            from repro.api.ops import relabeled_copy

            old_id = op_payload.get("graph_id")
            if old_id is None:
                old_id = handle_to_id[op_payload["handle"]]
            relabeled = relabeled_copy(
                database.get(old_id),
                int(op_payload["vertex_index"]),
                op_payload["label"],
                op_payload["new_handle"],
            )
            database.remove(old_id)
            new_id = database.insert(
                relabeled, graph_id=op_payload.get("new_graph_id")
            )
            old_handle = id_to_handle.pop(old_id, None)
            if old_handle is not None:
                handle_to_id.pop(old_handle, None)
            handle_to_id[op_payload["new_handle"]] = new_id
            id_to_handle[new_id] = op_payload["new_handle"]
        else:
            raise WalCorruptionError(f"unknown WAL op {op!r}")
    except WalCorruptionError:
        raise
    except Exception as exc:
        raise WalCorruptionError(
            f"WAL replay of {op_payload.get('op')!r} record failed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def recover(data_dir: "str | Path", upto_lsn: int | None = None) -> RecoveredState:
    """One-shot recovery: open (repairing) + rebuild, read-only intent.

    The convenience entry the CLI and tests use when they do not keep
    the log attached afterwards.
    """
    log = DurableLog.open(data_dir)
    try:
        return log.recover(upto_lsn=upto_lsn)
    finally:
        log.close()
