"""Feature index: sound lower bounds on GCS dimensions without solving.

For the paper's three measures, cheap per-pair lower bounds exist from
label-multiset features alone (:mod:`repro.graph.features`):

* ``DistEd`` ≥ label-multiset assignment bound;
* ``DistMcs`` / ``DistGu`` ≥ bounds from the edge-label overlap cap on
  ``|mcs|``.

The index stores each graph's features and, per query, produces an
*optimistic* (lower-bound) GCS vector per graph. The executor can then
prune a candidate whose optimistic vector is already Pareto-dominated by
some exactly-evaluated vector — such a candidate can never enter the
skyline, so skipping its exact GED/MCS is sound. The same bounds answer
threshold (range) queries soundly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graph.features import (
    GraphFeatures,
    dist_gu_lower_bound,
    dist_mcs_lower_bound,
    edit_distance_lower_bound,
)
from repro.measures.base import DistanceMeasure


def _normalized_edit_bound(f1: GraphFeatures, f2: GraphFeatures) -> float:
    raw = edit_distance_lower_bound(f1, f2)
    return raw / (1.0 + raw)


#: Per-measure lower-bound functions over feature pairs. Measures without
#: an entry get the trivial bound 0 (never pruned incorrectly).
_BOUND_FUNCTIONS = {
    "edit": edit_distance_lower_bound,
    "edit-normalized": _normalized_edit_bound,
    "mcs": dist_mcs_lower_bound,
    "union": dist_gu_lower_bound,
}


class FeatureIndex:
    """Maps graph ids to features and computes optimistic GCS vectors."""

    def __init__(self) -> None:
        self._features: dict[int, GraphFeatures] = {}

    def add(self, graph_id: int, features: GraphFeatures) -> None:
        """Register (or refresh) the features of ``graph_id``."""
        self._features[graph_id] = features

    def discard(self, graph_id: int) -> None:
        """Remove ``graph_id`` from the index (no-op when absent)."""
        self._features.pop(graph_id, None)

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, graph_id: object) -> bool:
        return graph_id in self._features

    def features(self, graph_id: int) -> GraphFeatures:
        """The stored features of ``graph_id``."""
        return self._features[graph_id]

    def ids(self) -> list[int]:
        """All indexed graph ids, in registration (= database) order."""
        return list(self._features)

    def optimistic_vector(
        self,
        graph_id: int,
        query_features: GraphFeatures,
        measures: Sequence[DistanceMeasure],
    ) -> tuple[float, ...]:
        """Componentwise lower bound on ``GCS(graph, query)``.

        Guaranteed ≤ the exact vector on every dimension; dimensions whose
        measure has no known bound contribute 0.
        """
        own = self._features[graph_id]
        bounds = []
        for measure in measures:
            bound_function = _BOUND_FUNCTIONS.get(measure.name)
            bounds.append(
                0.0 if bound_function is None else float(bound_function(own, query_features))
            )
        return tuple(bounds)

    def threshold_candidates(
        self,
        query_features: GraphFeatures,
        measure: DistanceMeasure,
        threshold: float,
    ) -> list[int]:
        """Ids whose lower bound under ``measure`` does not exceed ``threshold``.

        A sound candidate set for range queries: every excluded graph
        provably has distance > threshold. Without a bound function for the
        measure, every id is a candidate.
        """
        bound_function = _BOUND_FUNCTIONS.get(measure.name)
        if bound_function is None:
            return list(self._features)
        return [
            graph_id
            for graph_id, features in self._features.items()
            if bound_function(features, query_features) <= threshold
        ]
