"""Similarity-dominance relation (Definition 12).

``g ≻q g'`` holds iff ``GCS(g, q)`` Pareto-dominates ``GCS(g', q)``: ``g``
is not less similar to the query on any dimension and strictly more
similar on at least one. The graph-level helpers below compute the two GCS
vectors and delegate to the generic vector dominance of
:mod:`repro.skyline.utils`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure
from repro.core.gcs import compound_similarity
from repro.skyline.utils import dominates


def similarity_dominates(
    g: LabeledGraph,
    g_prime: LabeledGraph,
    query: LabeledGraph,
    measures: Iterable["str | DistanceMeasure"] | None = None,
    tolerance: float = 0.0,
) -> bool:
    """Whether ``g ≻q g_prime`` (Definition 12)."""
    vector_g = compound_similarity(g, query, measures).values
    vector_g_prime = compound_similarity(g_prime, query, measures).values
    return dominates(vector_g, vector_g_prime, tolerance)


def similarity_incomparable(
    g: LabeledGraph,
    g_prime: LabeledGraph,
    query: LabeledGraph,
    measures: Iterable["str | DistanceMeasure"] | None = None,
    tolerance: float = 0.0,
) -> bool:
    """Neither graph similarity-dominates the other in the context of ``query``."""
    vector_g = compound_similarity(g, query, measures).values
    vector_g_prime = compound_similarity(g_prime, query, measures).values
    return not dominates(vector_g, vector_g_prime, tolerance) and not dominates(
        vector_g_prime, vector_g, tolerance
    )
