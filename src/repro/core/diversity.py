"""Diversity-based refinement of a graph similarity skyline (Section VII).

A large skyline is reduced to a representative subset ``S`` of user-chosen
size ``k`` that is *as diverse as possible*. Following the paper (adapted
from Kukkonen & Lampinen's ranking-dominance):

1. The diversity of a candidate subset ``S`` is the vector
   ``Div(S) = (v_1, ..., v_d)`` with
   ``v_i = min{ Dist_i(g, g') | g, g' in S }`` — the *smallest* pairwise
   distance inside ``S`` on dimension ``i`` (larger = more diverse). The
   dimensions are the normalised measures ``(DistN-Ed, DistMcs, DistGu)``.
2. For every dimension, candidates are rank-ordered by decreasing ``v_i``;
   ties share a rank and the next distinct value gets the next integer
   (*dense* ranking — required to reproduce Table V, where two candidates
   share rank 3 on v1 and two share rank 5 on v2).
3. ``val(S)`` is the sum of the d ranks; the candidate minimising it wins.
   Ties on ``val`` are broken by candidate enumeration order
   (lexicographic in skyline order), making the result deterministic.

The exhaustive method enumerates all C(|GSS|, k) subsets, exactly as the
paper describes. For large skylines this explodes, so a greedy max-min
heuristic (classic farthest-point diversity) is provided as a documented
extension and compared in ablation bench A3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import QueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import (
    DistanceMeasure,
    PairContext,
    diversity_measures,
    measure_names,
    resolve_measures,
)


@dataclass(frozen=True)
class DiversityCandidate:
    """One size-k subset with its diversity vector, ranks and val(S)."""

    indices: tuple[int, ...]
    names: tuple[str, ...]
    diversity: tuple[float, ...]
    ranks: tuple[int, ...] = ()
    val: int = 0


@dataclass
class DiversityResult:
    """Outcome of the Section-VII refinement.

    ``candidates`` holds every evaluated subset (Table IV/V material);
    ``best_index`` points into it; ``subset`` returns the winning graphs.
    """

    graphs: list[LabeledGraph]
    k: int
    measures: tuple[str, ...]
    candidates: list[DiversityCandidate]
    best_index: int
    method: str = "exhaustive"

    @property
    def best(self) -> DiversityCandidate:
        """The winning candidate (minimal ``val``, ties by enumeration order)."""
        return self.candidates[self.best_index]

    @property
    def subset(self) -> list[LabeledGraph]:
        """The maximally diverse size-k subset of the skyline."""
        return [self.graphs[i] for i in self.best.indices]


def pairwise_distance_matrix(
    graphs: Sequence[LabeledGraph],
    measures: Sequence[DistanceMeasure],
) -> dict[tuple[int, int], tuple[float, ...]]:
    """All pairwise measure vectors among ``graphs`` (one context per pair)."""
    matrix: dict[tuple[int, int], tuple[float, ...]] = {}
    for i, j in itertools.combinations(range(len(graphs)), 2):
        context = PairContext(graphs[i], graphs[j])
        vector = tuple(
            measure.distance(graphs[i], graphs[j], context) for measure in measures
        )
        matrix[(i, j)] = vector
        matrix[(j, i)] = vector
    return matrix


def subset_diversity(
    subset: Sequence[int],
    matrix: dict[tuple[int, int], tuple[float, ...]],
    dimension: int,
) -> tuple[float, ...]:
    """``Div(S)``: per-dimension minimum over all pairs inside the subset."""
    values = []
    for d in range(dimension):
        values.append(
            min(matrix[(i, j)][d] for i, j in itertools.combinations(subset, 2))
        )
    return tuple(values)


def dense_ranks_descending(values: Sequence[float]) -> list[int]:
    """Dense ranks with 1 = largest value; equal values share a rank.

    Example: [0.86, 0.83, 0.87, 0.80, 0.83, 0.75] -> [2, 3, 1, 4, 3, 5].
    """
    distinct = sorted(set(values), reverse=True)
    rank_of = {value: rank for rank, value in enumerate(distinct, start=1)}
    return [rank_of[value] for value in values]


def refine_by_diversity(
    graphs: Sequence[LabeledGraph],
    k: int,
    measures: Iterable["str | DistanceMeasure"] | None = None,
    method: str = "exhaustive",
) -> DiversityResult:
    """Select the maximally diverse size-``k`` subset of ``graphs``.

    Parameters
    ----------
    graphs:
        Typically the skyline ``GSS(D, q)`` (any graph list works).
    k:
        Target subset size (``2 <= k <= len(graphs)``).
    measures:
        Diversity dimensions; defaults to the paper's
        ``(DistN-Ed, DistMcs, DistGu)``.
    method:
        ``"exhaustive"`` — the paper's rank-sum over all C(n, k) subsets;
        ``"greedy"`` — max-min farthest-point heuristic (extension), which
        evaluates only the returned subset.
    """
    if k < 2:
        raise QueryError("diversity needs k >= 2 (it is defined on pairs)")
    if k > len(graphs):
        raise QueryError(f"cannot pick {k} graphs out of {len(graphs)}")
    resolved = (
        diversity_measures() if measures is None else resolve_measures(measures)
    )
    names = measure_names(resolved)
    matrix = pairwise_distance_matrix(graphs, resolved)
    graph_names = tuple(
        graph.name or f"g{i + 1}" for i, graph in enumerate(graphs)
    )

    if method == "exhaustive":
        candidates = _exhaustive_candidates(graphs, k, matrix, len(resolved), graph_names)
        best_index = min(
            range(len(candidates)), key=lambda i: (candidates[i].val, i)
        )
    elif method == "greedy":
        subset = _greedy_maxmin(len(graphs), k, matrix, len(resolved))
        diversity = subset_diversity(subset, matrix, len(resolved))
        candidates = [
            DiversityCandidate(
                indices=tuple(subset),
                names=tuple(graph_names[i] for i in subset),
                diversity=diversity,
                ranks=(1,) * len(resolved),
                val=len(resolved),
            )
        ]
        best_index = 0
    else:
        raise QueryError(f"unknown diversity method {method!r}")

    return DiversityResult(
        graphs=list(graphs),
        k=k,
        measures=names,
        candidates=candidates,
        best_index=best_index,
        method=method,
    )


def _exhaustive_candidates(
    graphs: Sequence[LabeledGraph],
    k: int,
    matrix: dict[tuple[int, int], tuple[float, ...]],
    dimension: int,
    graph_names: tuple[str, ...],
) -> list[DiversityCandidate]:
    """Step 1 + Step 2 of Section VII over every size-k subset."""
    subsets = list(itertools.combinations(range(len(graphs)), k))
    diversities = [subset_diversity(s, matrix, dimension) for s in subsets]
    ranks_per_dim = [
        dense_ranks_descending([div[d] for div in diversities])
        for d in range(dimension)
    ]
    candidates = []
    for index, (subset, diversity) in enumerate(zip(subsets, diversities)):
        ranks = tuple(ranks_per_dim[d][index] for d in range(dimension))
        candidates.append(
            DiversityCandidate(
                indices=subset,
                names=tuple(graph_names[i] for i in subset),
                diversity=diversity,
                ranks=ranks,
                val=sum(ranks),
            )
        )
    return candidates


def _greedy_maxmin(
    n: int,
    k: int,
    matrix: dict[tuple[int, int], tuple[float, ...]],
    dimension: int,
) -> list[int]:
    """Farthest-point heuristic on the mean of the distance dimensions."""

    def scalar(i: int, j: int) -> float:
        return sum(matrix[(i, j)]) / dimension

    # Seed with the overall farthest pair, then grow by max-min distance.
    best_pair = max(
        itertools.combinations(range(n), 2), key=lambda pair: scalar(*pair)
    )
    subset = list(best_pair)
    while len(subset) < k:
        remaining = [i for i in range(n) if i not in subset]
        subset.append(
            max(remaining, key=lambda i: min(scalar(i, j) for j in subset))
        )
    return sorted(subset)
