"""End-to-end query answering: GSS computation plus optional refinement.

:class:`SimilarityQueryEngine` bundles a measure vector, a skyline
algorithm choice and a diversity configuration into one object that can
answer graph similarity queries over any sequence of graphs — the shape of
the "system implementing it" the paper's conclusion announces. The
database layer (:mod:`repro.db`) wraps this engine with storage, indexes
and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import QueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure, resolve_measures, default_measures
from repro.core.diversity import DiversityResult, refine_by_diversity
from repro.core.gss import SkylineResult, graph_similarity_skyline
from repro.core.topk import TopKResult, top_k_by_measure


@dataclass
class QueryAnswer:
    """A complete answer: the skyline, and the diverse subset if requested."""

    skyline: SkylineResult
    refinement: DiversityResult | None = None

    @property
    def graphs(self) -> list[LabeledGraph]:
        """The answer set shown to the user (refined subset when available)."""
        if self.refinement is not None:
            return self.refinement.subset
        return self.skyline.skyline


class SimilarityQueryEngine:
    """Answers graph similarity queries with the paper's skyline semantics.

    Parameters
    ----------
    measures:
        GCS dimensions (default: DistEd, DistMcs, DistGu).
    diversity_measures:
        Dimensions for Section-VII refinement (default: DistN-Ed, DistMcs,
        DistGu).
    algorithm:
        Generic skyline algorithm to run over GCS vectors.
    tolerance:
        Dominance tolerance for floating-point measure values.
    """

    def __init__(
        self,
        measures: Iterable["str | DistanceMeasure"] | None = None,
        diversity_measures: Iterable["str | DistanceMeasure"] | None = None,
        algorithm: str = "bnl",
        tolerance: float = 0.0,
    ) -> None:
        self.measures = (
            default_measures() if measures is None else resolve_measures(measures)
        )
        self.diversity_measures = diversity_measures
        self.algorithm = algorithm
        self.tolerance = tolerance

    def skyline(
        self,
        graphs: Sequence[LabeledGraph],
        query: LabeledGraph,
    ) -> SkylineResult:
        """``GSS(D, q)`` under this engine's configuration."""
        return graph_similarity_skyline(
            graphs,
            query,
            measures=self.measures,
            algorithm=self.algorithm,
            tolerance=self.tolerance,
        )

    def query(
        self,
        graphs: Sequence[LabeledGraph],
        query: LabeledGraph,
        refine_k: int | None = None,
        refine_method: str = "exhaustive",
    ) -> QueryAnswer:
        """Answer a similarity query, optionally refining to ``refine_k`` graphs.

        When the skyline already has at most ``refine_k`` members the
        refinement step is skipped (nothing to reduce).
        """
        result = self.skyline(graphs, query)
        refinement = None
        if refine_k is not None and refine_k < len(result):
            refinement = refine_by_diversity(
                result.skyline,
                refine_k,
                measures=self.diversity_measures,
                method=refine_method,
            )
        return QueryAnswer(skyline=result, refinement=refinement)

    def top_k(
        self,
        graphs: Sequence[LabeledGraph],
        query: LabeledGraph,
        k: int,
        measure: "str | DistanceMeasure | None" = None,
    ) -> TopKResult:
        """Single-measure baseline retrieval (Section VI comparison).

        ``measure`` defaults to this engine's first GCS dimension.
        """
        if measure is None:
            if not self.measures:
                raise QueryError("engine has no measures configured")
            measure = self.measures[0]
        return top_k_by_measure(graphs, query, measure, k)
