"""End-to-end query answering shim: GSS computation plus refinement.

.. deprecated:: 1.0
    :class:`SimilarityQueryEngine` is a thin compatibility shim over the
    unified query API (:mod:`repro.api`): it opens a ``memory``-backend
    :class:`~repro.api.session.Session` over the caller's graphs and
    translates the unified :class:`~repro.api.result.ResultSet` back into
    the legacy :class:`SkylineResult` / :class:`QueryAnswer` /
    :class:`~repro.core.topk.TopKResult` shapes. New code should call
    ``repro.connect(graphs).execute(repro.Query(q).skyline())`` directly;
    this class is kept so existing callers keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import QueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import (
    DistanceMeasure,
    measure_names,
    resolve_measures,
    default_measures,
)
from repro.core.diversity import DiversityResult, refine_by_diversity
from repro.core.gss import SkylineResult
from repro.core.topk import TopKResult


@dataclass
class QueryAnswer:
    """A complete answer: the skyline, and the diverse subset if requested."""

    skyline: SkylineResult
    refinement: DiversityResult | None = None

    @property
    def graphs(self) -> list[LabeledGraph]:
        """The answer set shown to the user (refined subset when available)."""
        if self.refinement is not None:
            return self.refinement.subset
        return self.skyline.skyline


class SimilarityQueryEngine:
    """Answers graph similarity queries with the paper's skyline semantics.

    .. deprecated:: 1.0
        Shim over the unified query API; prefer
        ``repro.connect(graphs).execute(repro.Query(q).skyline())``.

    Parameters
    ----------
    measures:
        GCS dimensions (default: DistEd, DistMcs, DistGu).
    diversity_measures:
        Dimensions for Section-VII refinement (default: DistN-Ed, DistMcs,
        DistGu).
    algorithm:
        Generic skyline algorithm to run over GCS vectors.
    tolerance:
        Dominance tolerance for floating-point measure values.
    """

    def __init__(
        self,
        measures: Iterable["str | DistanceMeasure"] | None = None,
        diversity_measures: Iterable["str | DistanceMeasure"] | None = None,
        algorithm: str = "bnl",
        tolerance: float = 0.0,
    ) -> None:
        from repro._deprecation import warn_deprecated_once

        warn_deprecated_once(
            "SimilarityQueryEngine",
            "SimilarityQueryEngine is deprecated; use "
            "repro.connect(graphs).execute(repro.Query(q).skyline()) instead",
        )
        self.measures = (
            default_measures() if measures is None else resolve_measures(measures)
        )
        self.diversity_measures = diversity_measures
        self.algorithm = algorithm
        self.tolerance = tolerance

    def _execute(self, graphs: Sequence[LabeledGraph], spec_changes: dict):
        """Run one spec over a view-session (graph identity preserved)."""
        from repro.api.session import Session
        from repro.api.spec import GraphQuery
        from repro.db.database import GraphDatabase

        database = GraphDatabase.from_graphs(graphs, copy=False)
        session = Session(database, backend="memory")
        spec = GraphQuery(
            graph=spec_changes.pop("graph"),
            measures=self.measures,
            algorithm=self.algorithm,
            tolerance=self.tolerance,
            **spec_changes,
        )
        return session.execute(spec)

    def skyline(
        self,
        graphs: Sequence[LabeledGraph],
        query: LabeledGraph,
    ) -> SkylineResult:
        """``GSS(D, q)`` under this engine's configuration."""
        graphs = list(graphs)
        result = self._execute(graphs, {"graph": query, "kind": "skyline"})
        # View-database ids are 0..n-1 in insertion order, so ids double
        # as positions into ``graphs``.
        return SkylineResult(
            query=query,
            graphs=graphs,
            vectors=[result.vectors[i] for i in range(len(graphs))],
            skyline_indices=result.ids,
            measures=measure_names(self.measures),
            algorithm=self.algorithm,
            tolerance=self.tolerance,
        )

    def query(
        self,
        graphs: Sequence[LabeledGraph],
        query: LabeledGraph,
        refine_k: int | None = None,
        refine_method: str = "exhaustive",
    ) -> QueryAnswer:
        """Answer a similarity query, optionally refining to ``refine_k`` graphs.

        When the skyline already has at most ``refine_k`` members the
        refinement step is skipped (nothing to reduce).
        """
        result = self.skyline(graphs, query)
        refinement = None
        if refine_k is not None and refine_k < len(result):
            refinement = refine_by_diversity(
                result.skyline,
                refine_k,
                measures=self.diversity_measures,
                method=refine_method,
            )
        return QueryAnswer(skyline=result, refinement=refinement)

    def top_k(
        self,
        graphs: Sequence[LabeledGraph],
        query: LabeledGraph,
        k: int,
        measure: "str | DistanceMeasure | None" = None,
    ) -> TopKResult:
        """Single-measure baseline retrieval (Section VI comparison).

        ``measure`` defaults to this engine's first GCS dimension.
        """
        if measure is None:
            if not self.measures:
                raise QueryError("engine has no measures configured")
            measure = self.measures[0]
        graphs = list(graphs)
        result = self._execute(
            graphs, {"graph": query, "kind": "topk", "k": k, "measure": measure}
        )
        return TopKResult(
            query=query,
            measure=result.measures[0],
            k=k,
            ranking=[(index, result.distances[index]) for index in result.ids],
        )
