"""Single-measure top-k retrieval — the baseline the paper argues against.

Every prior similarity-search system the paper discusses (Grafil, C-Tree,
Tale, Shang et al.) ranks by *one* scalar measure. This module implements
that retrieval mode so the Section-VI comparison can be reproduced: with
k = 3 under ``DistEd``, graph ``g3`` is returned to the user although the
skyline rejects it (``g5`` does better on every dimension).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import QueryError
from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure, PairContext, get_measure


@dataclass
class TopKResult:
    """Ranked single-measure retrieval result."""

    query: LabeledGraph
    measure: str
    k: int
    ranking: list[tuple[int, float]]  # (database index, distance), best first

    @property
    def indices(self) -> list[int]:
        """Database indices of the k best graphs, best first."""
        return [index for index, _ in self.ranking]

    def graphs(self, database: Sequence[LabeledGraph]) -> list[LabeledGraph]:
        """Resolve the ranked indices against the database they came from."""
        return [database[index] for index in self.indices]


def top_k_by_measure(
    graphs: Sequence[LabeledGraph],
    query: LabeledGraph,
    measure: "str | DistanceMeasure",
    k: int,
) -> TopKResult:
    """The ``k`` graphs closest to ``query`` under a single measure.

    Ties are broken by database order (deterministic). This is the
    retrieval model of single-index similarity systems; contrast with
    :func:`repro.core.gss.graph_similarity_skyline`.
    """
    if k < 1:
        raise QueryError("k must be at least 1")
    resolved = get_measure(measure)
    scored = [
        (index, resolved.distance(graph, query, PairContext(graph, query)))
        for index, graph in enumerate(graphs)
    ]
    scored.sort(key=lambda item: (item[1], item[0]))
    return TopKResult(
        query=query,
        measure=resolved.name,
        k=k,
        ranking=scored[:k],
    )
