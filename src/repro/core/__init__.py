"""The paper's contribution: GCS, similarity-dominance, GSS, diversity.

* :func:`compound_similarity` / :func:`gcs_matrix` — Definition 11.
* :func:`similarity_dominates` — Definition 12.
* :func:`graph_similarity_skyline` — Equation 4 / Section V.
* :func:`refine_by_diversity` — Section VII.
* :func:`top_k_by_measure` — the single-measure baseline of Section VI.
* :class:`SimilarityQueryEngine` — all of the above behind one facade.
"""

from repro.core.gcs import CompoundSimilarity, compound_similarity, gcs_matrix
from repro.core.dominance import similarity_dominates, similarity_incomparable
from repro.core.gss import SkylineResult, graph_similarity_skyline
from repro.core.diversity import (
    DiversityCandidate,
    DiversityResult,
    dense_ranks_descending,
    pairwise_distance_matrix,
    refine_by_diversity,
    subset_diversity,
)
from repro.core.topk import TopKResult, top_k_by_measure
from repro.core.pipeline import QueryAnswer, SimilarityQueryEngine
from repro.core.explain import (
    Domination,
    MembershipExplanation,
    explain_all,
    explain_membership,
)

__all__ = [
    "CompoundSimilarity",
    "compound_similarity",
    "gcs_matrix",
    "similarity_dominates",
    "similarity_incomparable",
    "SkylineResult",
    "graph_similarity_skyline",
    "DiversityCandidate",
    "DiversityResult",
    "dense_ranks_descending",
    "pairwise_distance_matrix",
    "refine_by_diversity",
    "subset_diversity",
    "TopKResult",
    "top_k_by_measure",
    "QueryAnswer",
    "SimilarityQueryEngine",
    "Domination",
    "MembershipExplanation",
    "explain_membership",
    "explain_all",
]
