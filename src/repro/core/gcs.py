"""Graph Compound Similarity — GCS vectors (Definition 11).

``GCS(g, q) = (Dist_1(g, q), ..., Dist_d(g, q))``: a d-dimensional vector
of local distance measures, each capturing similarity w.r.t. one facet of
graph structure. This module computes single vectors and matrices of
vectors, sharing a :class:`~repro.measures.base.PairContext` per pair so
that measures with common sub-problems (MCS for both ``DistMcs`` and
``DistGu``) never solve them twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import (
    DistanceMeasure,
    PairContext,
    default_measures,
    measure_names,
    resolve_measures,
)


@dataclass(frozen=True)
class CompoundSimilarity:
    """One GCS vector together with the measure names that produced it."""

    values: tuple[float, ...]
    measures: tuple[str, ...]

    def __iter__(self):
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]

    def as_dict(self) -> dict[str, float]:
        """Mapping ``measure name -> distance value``."""
        return dict(zip(self.measures, self.values))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value:.3g}" for name, value in zip(self.measures, self.values)
        )
        return f"GCS({inner})"


def compound_similarity(
    graph: LabeledGraph,
    query: LabeledGraph,
    measures: Iterable["str | DistanceMeasure"] | None = None,
    context: PairContext | None = None,
) -> CompoundSimilarity:
    """``GCS(graph, query)`` under the given measure vector.

    ``measures`` defaults to the paper's ``(DistEd, DistMcs, DistGu)``.
    """
    resolved = default_measures() if measures is None else resolve_measures(measures)
    if context is None:
        context = PairContext(graph, query)
    values = tuple(measure.distance(graph, query, context) for measure in resolved)
    return CompoundSimilarity(values=values, measures=measure_names(resolved))


def gcs_matrix(
    graphs: Sequence[LabeledGraph],
    query: LabeledGraph,
    measures: Iterable["str | DistanceMeasure"] | None = None,
) -> list[CompoundSimilarity]:
    """GCS vectors of every graph against ``query`` (one context per pair)."""
    resolved = default_measures() if measures is None else resolve_measures(measures)
    return [
        compound_similarity(graph, query, resolved, PairContext(graph, query))
        for graph in graphs
    ]
