"""Human-readable explanations of skyline membership.

The paper argues each answer graph should be "provided to the user with a
vector of scores showing different similarities pertaining to different
features". This module goes one step further and explains *why* a graph
is or is not in the answer set:

* skyline members: which dimensions make them non-dominated (for each
  other graph, a dimension where they are strictly better);
* rejected graphs: their dominators, with the per-dimension margins.

Used by the walkthrough example and handy when debugging measure choices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gss import SkylineResult
from repro.errors import QueryError


@dataclass(frozen=True)
class Domination:
    """One dominator with its per-dimension margins (positive = better)."""

    dominator: str
    margins: tuple[float, ...]


@dataclass
class MembershipExplanation:
    """Why one graph is in (or out of) the similarity skyline."""

    graph: str
    in_skyline: bool
    vector: tuple[float, ...]
    measures: tuple[str, ...]
    dominators: list[Domination]

    def narrative(self) -> str:
        """A short plain-text explanation."""
        values = ", ".join(
            f"{name}={value:.3g}" for name, value in zip(self.measures, self.vector)
        )
        if self.in_skyline:
            return (
                f"{self.graph} (GCS: {values}) is in the skyline: no database "
                "graph is at least as similar on every dimension and strictly "
                "more similar on one."
            )
        lines = [f"{self.graph} (GCS: {values}) is NOT in the skyline:"]
        for domination in self.dominators:
            strict = [
                f"{name} by {margin:.3g}"
                for name, margin in zip(self.measures, domination.margins)
                if margin > 0
            ]
            lines.append(
                f"  dominated by {domination.dominator} "
                f"(strictly better on {', '.join(strict)})"
            )
        return "\n".join(lines)


def explain_membership(result: SkylineResult, name: str) -> MembershipExplanation:
    """Explain the skyline status of the graph called ``name``.

    Raises :class:`~repro.errors.QueryError` when no graph of the result
    carries that name.
    """
    names = [graph.name or f"g{i + 1}" for i, graph in enumerate(result.graphs)]
    try:
        index = names.index(name)
    except ValueError:
        raise QueryError(
            f"no graph named {name!r} in the result (have: {', '.join(names)})"
        ) from None
    vector = result.vectors[index].values
    dominators = []
    for j in result.dominators_of(index):
        other = result.vectors[j].values
        margins = tuple(v - o for v, o in zip(vector, other))
        dominators.append(Domination(dominator=names[j], margins=margins))
    return MembershipExplanation(
        graph=names[index],
        in_skyline=index in set(result.skyline_indices),
        vector=vector,
        measures=result.measures,
        dominators=dominators,
    )


def explain_all(result: SkylineResult) -> list[MembershipExplanation]:
    """Explanations for every graph of the result, in database order."""
    names = [graph.name or f"g{i + 1}" for i, graph in enumerate(result.graphs)]
    return [explain_membership(result, name) for name in names]
