"""Graph Similarity Skyline — GSS (Section V, Equation 4).

``GSS(D, q)`` is the set of graphs of the database that no other graph
similarity-dominates in the context of the query: the maximally-similar
graphs in the Pareto sense. Computation proceeds in two phases:

1. evaluate the GCS vector of every database graph against the query
   (the expensive part — exact GED and MCS per pair);
2. run any generic skyline algorithm over the resulting n × d matrix.

The :class:`SkylineResult` keeps the full matrix so callers can render
Table-III-style reports, inspect who dominated whom, and feed the skyline
into the diversity refinement without recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.graph.labeled_graph import LabeledGraph
from repro.measures.base import DistanceMeasure
from repro.core.gcs import CompoundSimilarity, gcs_matrix
from repro.skyline import skyline as vector_skyline
from repro.skyline.utils import dominates


@dataclass
class SkylineResult:
    """Outcome of a graph-similarity-skyline query.

    Attributes
    ----------
    query:
        The query graph.
    graphs:
        The database graphs, in database order.
    vectors:
        ``GCS(graphs[i], query)`` for every i (same order).
    skyline_indices:
        Sorted indices of the Pareto-optimal graphs.
    measures:
        Names of the GCS dimensions.
    """

    query: LabeledGraph
    graphs: list[LabeledGraph]
    vectors: list[CompoundSimilarity]
    skyline_indices: list[int]
    measures: tuple[str, ...]
    algorithm: str = "bnl"
    tolerance: float = 0.0
    _dominators: dict[int, list[int]] | None = field(default=None, repr=False)

    @property
    def skyline(self) -> list[LabeledGraph]:
        """The Pareto-optimal graphs — ``GSS(D, q)`` itself."""
        return [self.graphs[i] for i in self.skyline_indices]

    @property
    def skyline_vectors(self) -> list[CompoundSimilarity]:
        """GCS vectors of the skyline members (aligned with ``skyline``)."""
        return [self.vectors[i] for i in self.skyline_indices]

    def __len__(self) -> int:
        return len(self.skyline_indices)

    def __contains__(self, graph: LabeledGraph) -> bool:
        return any(member is graph for member in self.skyline)

    def dominators_of(self, index: int) -> list[int]:
        """Indices of graphs that similarity-dominate ``graphs[index]``.

        Empty exactly for skyline members. Computed lazily for the whole
        database on first use.
        """
        if self._dominators is None:
            self._dominators = {}
            for i, vector in enumerate(self.vectors):
                self._dominators[i] = [
                    j
                    for j, other in enumerate(self.vectors)
                    if j != i and dominates(other.values, vector.values, self.tolerance)
                ]
        return self._dominators[index]

    def to_rows(self) -> list[dict[str, object]]:
        """Table-III-style rows: one dict per graph with name, GCS, membership."""
        rows = []
        member = set(self.skyline_indices)
        for i, (graph, vector) in enumerate(zip(self.graphs, self.vectors)):
            row: dict[str, object] = {"graph": graph.name or f"g{i + 1}"}
            row.update(vector.as_dict())
            row["in_skyline"] = i in member
            rows.append(row)
        return rows


def graph_similarity_skyline(
    graphs: Sequence[LabeledGraph],
    query: LabeledGraph,
    measures: Iterable["str | DistanceMeasure"] | None = None,
    algorithm: str = "bnl",
    tolerance: float = 0.0,
) -> SkylineResult:
    """Compute ``GSS(D, q)`` (Equation 4).

    Parameters
    ----------
    graphs:
        The database ``D``.
    query:
        The graph similarity query ``q``.
    measures:
        GCS dimensions; defaults to the paper's (DistEd, DistMcs, DistGu).
    algorithm:
        Skyline algorithm over the GCS matrix (``naive``/``bnl``/``sfs``/
        ``dnc`` — identical output, different speed).
    tolerance:
        Treat dimension values within ``tolerance`` as equal when checking
        dominance (useful for floating-point measure values).
    """
    vectors = gcs_matrix(graphs, query, measures)
    raw = [vector.values for vector in vectors]
    indices = vector_skyline(raw, algorithm=algorithm, tolerance=tolerance)
    measure_labels = vectors[0].measures if vectors else ()
    return SkylineResult(
        query=query,
        graphs=list(graphs),
        vectors=vectors,
        skyline_indices=indices,
        measures=measure_labels,
        algorithm=algorithm,
        tolerance=tolerance,
    )
