"""Experiment harness shared by the reproduction benchmarks.

Each bench in ``benchmarks/`` regenerates one artifact of the paper
(table, figure, or announced experiment). The harness centralises the
recurring mechanics: building the paper datasets, computing the
full set of measured table values, and packaging paper-vs-measured
verdicts that benches print and tests assert on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.diversity import refine_by_diversity
from repro.core.gss import graph_similarity_skyline
from repro.core.topk import top_k_by_measure
from repro.datasets import paper_example
from repro.graph.ged import graph_edit_distance
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.mcs import mcs_size
from repro.measures.base import PairContext, default_measures


@dataclass
class PaperExampleReport:
    """Every measured quantity of the Section-VI worked example."""

    mcs_with_query: dict[str, int] = field(default_factory=dict)
    gcs: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    skyline: list[str] = field(default_factory=list)
    topk_edit: list[str] = field(default_factory=list)
    pairwise_mcs: dict[tuple[str, str], int] = field(default_factory=dict)
    pairwise_ged: dict[tuple[str, str], int] = field(default_factory=dict)
    diversity_vectors: dict[tuple[str, str], tuple[float, float, float]] = field(
        default_factory=dict
    )
    diversity_ranks: dict[tuple[str, str], tuple[int, ...]] = field(default_factory=dict)
    diversity_val: dict[tuple[str, str], int] = field(default_factory=dict)
    diverse_subset: list[str] = field(default_factory=list)


def compute_paper_example_report(k: int = 2, topk: int = 3) -> PaperExampleReport:
    """Run the full Section VI + VII pipeline on the reconstructed data."""
    report = PaperExampleReport()
    database = paper_example.figure3_database()
    query = paper_example.figure3_query()

    for graph in database:
        report.mcs_with_query[graph.name] = mcs_size(graph, query)

    result = graph_similarity_skyline(database, query, measures=default_measures())
    for graph, vector in zip(result.graphs, result.vectors):
        report.gcs[graph.name] = tuple(vector.values)
    report.skyline = [graph.name for graph in result.skyline]

    ranked = top_k_by_measure(database, query, "edit", topk)
    report.topk_edit = [database[i].name for i in ranked.indices]

    members = result.skyline
    for a, b in itertools.combinations(members, 2):
        key = (a.name, b.name)
        report.pairwise_mcs[key] = mcs_size(a, b)
        report.pairwise_ged[key] = int(graph_edit_distance(a, b).distance)

    refined = refine_by_diversity(members, k=k)
    for candidate in refined.candidates:
        key = tuple(candidate.names)
        report.diversity_vectors[key] = candidate.diversity
        report.diversity_ranks[key] = candidate.ranks
        report.diversity_val[key] = candidate.val
    report.diverse_subset = [graph.name for graph in refined.subset]
    return report


def query_side_vectors(
    database: list[LabeledGraph], query: LabeledGraph
) -> dict[str, tuple[float, ...]]:
    """GCS vectors (default measures) keyed by graph name."""
    vectors = {}
    for graph in database:
        context = PairContext(graph, query)
        vectors[graph.name] = tuple(
            measure.distance(graph, query, context) for measure in default_measures()
        )
    return vectors
