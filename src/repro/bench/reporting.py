"""Plain-text table rendering for the reproduction benches.

Renders rows the way the paper prints them (fixed-width columns, rounded
values) and produces paper-vs-measured comparison tables so every bench
can show its verdict inline in the pytest-benchmark output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_value(value: object, digits: int = 2) -> str:
    """Numbers rounded to ``digits``; integral floats printed as ints."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    digits: int = 2,
) -> str:
    """A fixed-width text table (paper style)."""
    formatted = [[format_value(cell, digits) for cell in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in formatted), 1)
        if formatted
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def comparison_rows(
    paper: Mapping[str, float],
    measured: Mapping[str, float],
    tolerance: float = 0.01,
) -> list[list[object]]:
    """Rows (key, paper, measured, |delta|, verdict) for aligned mappings."""
    rows: list[list[object]] = []
    for key in paper:
        expected = paper[key]
        actual = measured[key]
        delta = abs(actual - expected)
        rows.append(
            [key, expected, actual, round(delta, 4), "OK" if delta <= tolerance else "DIFF"]
        )
    return rows


def agreement_summary(rows: Sequence[Sequence[object]]) -> str:
    """'x/y cells agree' line for a comparison table."""
    agreeing = sum(1 for row in rows if row[-1] == "OK")
    return f"{agreeing}/{len(rows)} cells agree with the paper"
