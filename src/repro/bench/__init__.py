"""Benchmark harness utilities (table rendering, paper-example pipeline)."""

from repro.bench.harness import (
    PaperExampleReport,
    compute_paper_example_report,
    query_side_vectors,
)
from repro.bench.reporting import (
    agreement_summary,
    comparison_rows,
    format_value,
    render_table,
)

__all__ = [
    "PaperExampleReport",
    "compute_paper_example_report",
    "query_side_vectors",
    "render_table",
    "format_value",
    "comparison_rows",
    "agreement_summary",
]
