"""Placement policies: which shard a graph lands on.

A :class:`Placement` decides, at insert time, which shard of a
:class:`~repro.shard.store.ShardedGraphDatabase` owns a graph. The
decision must be a pure function of the insert-time inputs (the global
graph id, the graph itself, and the current shard loads) so a placement
never needs to move graphs afterwards — scatter-gather correctness does
not depend on *where* a graph lives, only on every graph living in
exactly one shard, which the store enforces.

Two policies ship:

* ``hash`` (:class:`HashPlacement`, the default) — modular hashing of
  the global graph id. Deterministic, stateless, and uniform for the
  store's sequential ids, so a saved database re-shards identically.
* ``size-balanced`` (:class:`SizeBalancedPlacement`) — the shard with
  the least accumulated load (total vertex count, ties to the lowest
  shard index) wins. Keeps per-shard exact-evaluation work even when
  graph sizes are skewed, at the cost of id-dependent determinism:
  placement now depends on insertion history.

Policies are registered by name (:func:`register_placement`) so
``connect(..., shards=4, placement="size-balanced")`` reaches custom
strategies without touching the store.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import GraphDatabase
    from repro.graph.labeled_graph import LabeledGraph


class Placement(abc.ABC):
    """Strategy interface: pick the shard for one inserted graph."""

    #: Registry/display name; subclasses must override.
    name: str = "abstract"

    @abc.abstractmethod
    def place(
        self,
        graph_id: int,
        graph: "LabeledGraph",
        shards: Sequence["GraphDatabase"],
    ) -> int:
        """Index (``0 <= index < len(shards)``) of the shard to own
        ``graph`` under ``graph_id``."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class HashPlacement(Placement):
    """Modular hashing of the global graph id (the default policy)."""

    name = "hash"

    def place(self, graph_id, graph, shards):
        return graph_id % len(shards)


class SizeBalancedPlacement(Placement):
    """Least-loaded shard wins; load is the shard's total vertex count.

    Exact pair evaluation cost grows with graph order, so balancing
    vertices (rather than graph counts) evens out per-shard solve time
    under skewed size distributions. Reads each shard's O(1)
    :attr:`~repro.db.database.GraphDatabase.vertex_load` counter (which
    also follows removals), so placement costs O(shards) per insert.
    Ties break to the lowest index, so placement stays deterministic
    for a fixed mutation sequence.
    """

    name = "size-balanced"

    def place(self, graph_id, graph, shards):
        return min(
            range(len(shards)),
            key=lambda index: (shards[index].vertex_load, index),
        )


_PLACEMENTS: dict[str, type[Placement]] = {}


def register_placement(name: str, placement: type[Placement]) -> None:
    """Register a placement class under ``name`` (overwrites silently)."""
    _PLACEMENTS[name] = placement


def available_placements() -> list[str]:
    """Names of every registered placement policy."""
    return sorted(_PLACEMENTS)


def get_placement(spec: "str | Placement") -> Placement:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(spec, Placement):
        return spec
    try:
        return _PLACEMENTS[spec]()
    except KeyError:
        raise QueryError(
            f"unknown placement {spec!r}; "
            f"available: {', '.join(available_placements())}"
        ) from None


register_placement(HashPlacement.name, HashPlacement)
register_placement(SizeBalancedPlacement.name, SizeBalancedPlacement)
