"""The ``sharded`` execution backend: scatter-gather over the shard store.

Registered under ``"sharded"``; opened most conveniently through
``repro.connect(source, backend="sharded", shards=N)`` (the session
re-partitions a monolithic source into a
:class:`~repro.shard.store.ShardedGraphDatabase` when needed).

Execution is the classic distributed decomposition:

1. **scatter** — one :func:`~repro.engine.core.run_plan` per non-empty
   shard, each over that shard's local candidate source
   (:class:`~repro.engine.scatter.ShardedSource`) and — in parallel mode
   — its own :class:`~repro.engine.workers.PooledEvaluator` on the
   persistent worker pool, so a shard's payload is attached in shared
   memory once and kept current by deltas, never re-shipped per query;
2. **cross-shard pruning** — the bound stage instance is shared across
   the sequential shard runs: exact vectors observed in shard ``i``
   prune candidates in shards ``i+1..N`` (sound: dominators and rank
   cutoffs are global facts, wherever the dominating graph lives). In
   parallel mode the same channel extends *into* the pool: one
   :class:`~repro.engine.workers.BoundSharing` per query carries every
   exact vector drained so far (plus vectors workers publish to the
   shared-memory frontier mid-chunk) into each shard's wave-based
   drain, so deferred evaluation no longer forfeits the pruning;
3. **gather** — :class:`~repro.engine.scatter.SkylineMerge` /
   :class:`~repro.engine.scatter.FrontierMerge` combine the per-shard
   local answers into the global one, property-equal to the monolithic
   consumers.

``tolerance > 0`` disables the Pareto stages and makes the merge pool
every evaluated vector (tolerant dominance is not transitive, so neither
pruning nor local-answer merging is sound there) — the backend then
degenerates to exhaustive per-shard evaluation plus one global
selection, i.e. exact ``memory`` semantics.
"""

from __future__ import annotations

import dataclasses
import time

from repro.errors import QueryError
from repro.db.database import GraphDatabase
from repro.api.spec import GraphQuery
from repro.api.backends import (
    ExecutionBackend,
    _numpy_available,
    register_backend,
)
from repro.engine.core import resolved_measures, run_plan
from repro.engine.evaluate import Evaluator, PooledEvaluator, SerialEvaluator
from repro.engine.plan import EvaluationPlan, Stage, bound_stage_for
from repro.engine.scatter import ShardedSource, merge_consumer, merged_stats
from repro.shard.store import ShardedGraphDatabase


class ShardedBackend(ExecutionBackend):
    """Scatter-gather evaluation across the shards of a sharded store.

    Parameters
    ----------
    database:
        A :class:`~repro.shard.store.ShardedGraphDatabase`. A monolithic
        database is rejected — partitioning must happen where the caller
        keeps their reference (``connect(..., shards=N)`` does it), or
        later mutations would silently bypass the shards.
    use_index:
        Enable the bound-pruning cascade (shared across shards).
    parallel:
        Evaluate each shard's cascade survivors on the shared process
        pool, shipping per-shard payloads; serial otherwise.
    max_workers / chunk_size:
        Pool sizing for ``parallel=True`` (see
        :class:`~repro.engine.evaluate.PooledEvaluator`).
    cache:
        Optional shared :class:`~repro.db.cache.PairCache`; the
        cached-pairs stage joins every shard's cascade.
    """

    name = "sharded"

    def __init__(
        self,
        database: GraphDatabase,
        use_index: bool = True,
        parallel: bool = False,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        cache=None,
    ) -> None:
        if not isinstance(database, ShardedGraphDatabase):
            raise QueryError(
                "the sharded backend needs a ShardedGraphDatabase; open the "
                "session with connect(..., shards=N) or re-partition via "
                "ShardedGraphDatabase.from_database(...)"
            )
        super().__init__(database)
        self.use_index = use_index
        self.parallel = parallel
        self.cache = cache
        self._source = ShardedSource(database, use_index=use_index)
        self._evaluators: dict[int, PooledEvaluator] = {}
        self._max_workers = max_workers
        self._chunk_size = chunk_size

    # -- topology observability ------------------------------------------
    @property
    def shard_count(self) -> int:
        return self.database.shard_count

    @property
    def max_workers(self) -> int:
        if not self.parallel:
            return 1
        return self._shard_evaluator(0).max_workers

    def close(self) -> None:
        """Release per-shard shared-memory attachments and matrix
        exports (the persistent pool itself stays warm)."""
        for evaluator in self._evaluators.values():
            evaluator.release()

    # -- plan construction -----------------------------------------------
    def _shard_evaluator(self, index: int) -> Evaluator:
        if not self.parallel:
            return SerialEvaluator()
        evaluator = self._evaluators.get(index)
        if evaluator is None:
            evaluator = self._evaluators[index] = PooledEvaluator(
                max_workers=self._max_workers, chunk_size=self._chunk_size
            )
        return evaluator

    def _prunes(self, spec: GraphQuery) -> bool:
        """Whether the bound stage is in the cascade for ``spec``.

        Tolerant dominance is not transitive, so Pareto pruning against
        it is unsound — vector kinds with ``tolerance > 0`` run
        exhaustively and rely on the merge's global-pool fallback.
        """
        if not self.use_index:
            return False
        return not (spec.kind in ("skyline", "skyband") and spec.tolerance > 0)

    def _shared_bound_stage(self, spec: GraphQuery) -> Stage:
        """One bound-stage instance reused by every shard run (the
        cross-shard pruning channel; see the module docstring)."""
        if _numpy_available():
            from repro.index.source import batch_bound_stage_for

            return batch_bound_stage_for(spec)
        return bound_stage_for(spec)

    def _cascade(self, spec: GraphQuery) -> tuple:
        if not self._prunes(spec):
            return self._cache_stages()
        stage = self._shared_bound_stage(spec)
        return (lambda ctx: stage,) + self._cache_stages()

    def _stage_labels(self, spec: GraphQuery) -> tuple[str, ...]:
        labels: tuple[str, ...] = ()
        if self._prunes(spec):
            labels = (type(self._shared_bound_stage(spec)).name,)
        labels += self._cache_labels()
        return labels + (merge_consumer(spec).name,)

    def build_plan(self, spec: GraphQuery) -> EvaluationPlan:
        """The representative plan (single-run form over all shards).

        :meth:`run` executes the scatter-gather equivalent: the same
        cascade per shard, with per-shard sources and evaluators, then a
        merge consumer. The source here is the concatenated-scatter
        :class:`ShardedSource`, so running this plan through
        :func:`~repro.engine.core.run_plan` directly stays correct.
        """
        return EvaluationPlan(
            source=self._source,
            cascade=self._cascade(spec),
            evaluator=SerialEvaluator(),
            stage_labels=self._stage_labels(spec),
        )

    def _query_sharing(self, spec: GraphQuery):
        """One :class:`~repro.engine.workers.BoundSharing` per parallel
        pruning query — the deferred-evaluation counterpart of the
        shared bound stage (``None`` when pruning is off/unsound)."""
        if not self.parallel or not self._prunes(spec):
            return None
        from repro.engine.workers import BoundSharing

        if spec.kind in ("skyline", "skyband"):
            dims = len(resolved_measures(spec))
        else:
            dims = 1
        return BoundSharing.for_spec(spec, dims, workers=self.max_workers)

    # -- execution --------------------------------------------------------
    def run(self, spec: GraphQuery) -> "BackendAnswer":
        spec.validate()
        database: ShardedGraphDatabase = self.database
        cascade = self._cascade(spec)
        labels = self._stage_labels(spec)
        answers = []
        shard_stats: list = [None] * database.shard_count
        sharing = self._query_sharing(spec)
        # An anytime wall-clock budget is *global*: the sequential shard
        # runs share it, so each shard gets the remainder (a shard after
        # expiry still runs its cascade and reports interval-bounded
        # starved candidates instead of re-anchoring the full budget).
        anytime_wall = None
        if spec.budget_ms is not None:
            anytime_wall = time.monotonic() + spec.budget_ms / 1000.0
        try:
            for index in range(database.shard_count):
                if not len(database.shards[index]):
                    continue
                evaluator = self._shard_evaluator(index)
                if sharing is not None and isinstance(
                    evaluator, PooledEvaluator
                ):
                    evaluator.sharing = sharing
                    evaluator.matrix_source = (
                        lambda idx=index: self._source.shard_store(idx)
                    )
                plan = EvaluationPlan(
                    source=self._source.shard_source(index),
                    cascade=cascade,
                    evaluator=evaluator,
                    stage_labels=labels,
                )
                shard_spec = spec
                if anytime_wall is not None:
                    remaining_ms = max(
                        1, int((anytime_wall - time.monotonic()) * 1000)
                    )
                    shard_spec = dataclasses.replace(spec, budget_ms=remaining_ms)
                answer = run_plan(
                    database.shards[index], shard_spec, plan, cache=self.cache
                )
                shard_stats[index] = answer.stats
                answers.append(answer)
        finally:
            if sharing is not None:
                for evaluator in self._evaluators.values():
                    evaluator.sharing = None
                sharing.release()
        stats = merged_stats(database, shard_stats)
        return merge_consumer(spec).merge(spec, answers, stats)


register_backend(ShardedBackend.name, ShardedBackend)
