"""Sharded graph storage: one database interface over N shard databases.

:class:`ShardedGraphDatabase` presents the exact
:class:`~repro.db.database.GraphDatabase` interface — stable global ids,
insertion-ordered iteration, versioning, iso-lookup, persistence via the
same ``entries()`` protocol — but partitions the graphs across ``shards``
inner :class:`~repro.db.database.GraphDatabase` instances through a
pluggable :class:`~repro.shard.placement.Placement` policy.

The split is what makes scatter-gather execution possible without any
change to the paper's pruning arguments:

* ids are allocated globally (never reused) and forced into the owning
  shard, so a shard database *is* a plain ``GraphDatabase`` whose ids
  happen to be a subset of the global id space — every existing index
  structure (:class:`~repro.db.index.FeatureIndex`,
  :class:`~repro.index.store.FeatureStore`) binds to a shard unchanged
  and follows that shard's own ``version`` counter;
* the global database remains fully usable as a monolith: every backend
  (``memory``, ``indexed``, ``parallel``, ``vectorized``) runs over a
  sharded store through the inherited interface, which is how the
  differential testkit fuzzes mutations that land on different shards
  under *all* execution strategies;
* the ``sharded`` backend (:mod:`repro.shard.backend`) additionally
  exploits the partitioning: per-shard cascades, per-shard payload
  shipping, and merge consumers over per-shard answers.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import DatasetError
from repro.db.database import GraphDatabase, StoredGraph
from repro.graph.canonical import canonical_hash
from repro.graph.labeled_graph import LabeledGraph
from repro.shard.placement import Placement, get_placement


class ShardedGraphDatabase(GraphDatabase):
    """A :class:`GraphDatabase` partitioned across N shard databases.

    Parameters
    ----------
    shards:
        Number of partitions (``>= 1``).
    placement:
        A registered policy name (``"hash"``, ``"size-balanced"``) or a
        :class:`~repro.shard.placement.Placement` instance.
    name:
        Database name; shard databases are named ``<name>.shard<i>``.
    """

    def __init__(
        self,
        shards: int = 2,
        placement: "str | Placement" = "hash",
        name: str = "graphdb",
    ) -> None:
        if shards < 1:
            raise DatasetError(f"a sharded database needs >= 1 shards, got {shards}")
        super().__init__(name=name)
        self.placement = get_placement(placement)
        self._shards: tuple[GraphDatabase, ...] = tuple(
            GraphDatabase(name=f"{name}.shard{index}") for index in range(shards)
        )
        #: Global id -> owning shard index, in global insertion order.
        self._shard_of: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Shard topology
    # ------------------------------------------------------------------
    @property
    def shards(self) -> tuple[GraphDatabase, ...]:
        """The per-shard databases, by shard index."""
        return self._shards

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, graph_id: int) -> int:
        """Index of the shard owning ``graph_id``."""
        try:
            return self._shard_of[graph_id]
        except KeyError:
            raise DatasetError(f"graph id {graph_id} is not in the database") from None

    def shard_sizes(self) -> list[int]:
        """Graph count per shard, by shard index."""
        return [len(shard) for shard in self._shards]

    @property
    def vertex_load(self) -> int:
        return sum(shard.vertex_load for shard in self._shards)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graphs(
        cls,
        graphs: Iterable[LabeledGraph],
        name: str = "graphdb",
        deduplicate: bool = False,
        copy: bool = True,
        shards: int = 2,
        placement: "str | Placement" = "hash",
    ) -> "ShardedGraphDatabase":
        """Bulk-load a sharded database (optionally dropping iso-duplicates)."""
        database = cls(shards=shards, placement=placement, name=name)
        for graph in graphs:
            if deduplicate and database.find_isomorphic(graph) is not None:
                continue
            database.insert(graph, copy=copy)
        return database

    @classmethod
    def from_database(
        cls,
        database: GraphDatabase,
        shards: int = 2,
        placement: "str | Placement" = "hash",
        copy: bool = False,
    ) -> "ShardedGraphDatabase":
        """Re-partition an existing database, preserving ids and metadata.

        The default ``copy=False`` shares the stored graph objects (the
        source database already owns defensive copies); the source is
        left untouched either way. Loading a saved database into shards
        is ``from_database(load_database(path, preserve_ids=True), ...)``
        — with preserved ids, hash placement lands every graph on the
        same shard again (the default load compacts ids after removals,
        which is lossless for answers but not for placement).
        """
        sharded = cls(shards=shards, placement=placement, name=database.name)
        for entry in database.entries():
            sharded.insert(
                entry.graph,
                metadata=entry.metadata,
                copy=copy,
                graph_id=entry.graph_id,
            )
        return sharded

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        graph: LabeledGraph,
        metadata: Mapping[str, object] | None = None,
        copy: bool = True,
        graph_id: int | None = None,
    ) -> int:
        new_id = self._next_id if graph_id is None else graph_id
        if new_id in self._shard_of:
            raise DatasetError(f"graph id {new_id} is already in the database")
        index = self.placement.place(new_id, graph, self._shards)
        if not 0 <= index < len(self._shards):
            raise DatasetError(
                f"placement {self.placement.name!r} chose shard {index} "
                f"of {len(self._shards)}"
            )
        if self._wal is not None and not self._wal.suppressed:
            self._log_mutation(
                self._insert_payload(graph, metadata, new_id), segment=index
            )
        self._shards[index].insert(graph, metadata, copy=copy, graph_id=new_id)
        self._shard_of[new_id] = index
        self._next_id = max(self._next_id, new_id) + 1
        self._version += 1
        return new_id

    def remove(self, graph_id: int) -> None:
        index = self._shard_of.get(graph_id)
        if index is None:
            raise DatasetError(f"graph id {graph_id} is not in the database")
        self._log_mutation({"op": "remove", "graph_id": graph_id}, segment=index)
        del self._shard_of[graph_id]
        self._shards[index].remove(graph_id)
        self._version += 1

    def restore_entry(
        self,
        shard_index: int,
        graph: LabeledGraph,
        metadata: Mapping[str, object] | None = None,
        graph_id: int | None = None,
        copy: bool = True,
    ) -> int:
        """Re-insert an entry into a *specific* shard, bypassing placement.

        WAL snapshot restore uses this to put every graph back on the
        shard that owned it at snapshot time — re-running placement would
        be wrong for load-dependent policies, whose decision depended on
        shard loads that no longer match the original insertion order.
        """
        if not 0 <= shard_index < len(self._shards):
            raise DatasetError(
                f"shard index {shard_index} out of range "
                f"for {len(self._shards)} shards"
            )
        new_id = self._next_id if graph_id is None else graph_id
        if new_id in self._shard_of:
            raise DatasetError(f"graph id {new_id} is already in the database")
        self._shards[shard_index].insert(
            graph, metadata, copy=copy, graph_id=new_id
        )
        self._shard_of[new_id] = shard_index
        self._next_id = max(self._next_id, new_id) + 1
        self._version += 1
        return new_id

    # ------------------------------------------------------------------
    # Durability (segment routing: one WAL segment per shard)
    # ------------------------------------------------------------------
    def wal_segment(self, graph_id: int) -> int:
        return self.shard_of(graph_id)

    def wal_segment_for_insert(self, graph: LabeledGraph, graph_id: int) -> int:
        # Placement is deterministic given the id and the current shard
        # state, so the insert that follows this routing decision lands
        # on the same shard the record was filed under.
        return self.placement.place(graph_id, graph, self._shards)

    # ------------------------------------------------------------------
    # Lookup (routed through the owning shard, global insertion order)
    # ------------------------------------------------------------------
    def get(self, graph_id: int) -> LabeledGraph:
        return self._shards[self.shard_of(graph_id)].get(graph_id)

    def entry(self, graph_id: int) -> StoredGraph:
        return self._shards[self.shard_of(graph_id)].entry(graph_id)

    def ids(self) -> list[int]:
        return list(self._shard_of)

    def graphs(self) -> list[LabeledGraph]:
        return [self.get(graph_id) for graph_id in self._shard_of]

    def entries(self) -> Iterator[StoredGraph]:
        return (self.entry(graph_id) for graph_id in self._shard_of)

    def find_isomorphic(
        self, graph: LabeledGraph, iso_hash: str | None = None
    ) -> int | None:
        # Each shard returns its earliest-inserted isomorphic graph (ids
        # grow with insertion), so the global earliest is the minimum.
        # Canonicalize once; every shard probe re-uses the hash.
        if iso_hash is None:
            iso_hash = canonical_hash(graph)
        matches = [
            match
            for shard in self._shards
            if (match := shard.find_isomorphic(graph, iso_hash)) is not None
        ]
        return min(matches) if matches else None

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shard_of)

    def __contains__(self, graph_id: object) -> bool:
        return graph_id in self._shard_of

    def __iter__(self) -> Iterator[tuple[int, LabeledGraph]]:
        for graph_id in self._shard_of:
            yield graph_id, self.get(graph_id)

    def __repr__(self) -> str:
        sizes = "+".join(str(size) for size in self.shard_sizes())
        return (
            f"<ShardedGraphDatabase {self.name!r}: {len(self)} graphs "
            f"across {self.shard_count} shards ({sizes})>"
        )
