"""Sharded storage and scatter-gather execution.

The horizontal-scaling layer: :class:`ShardedGraphDatabase` partitions a
graph database across N shard databases behind the unchanged
:class:`~repro.db.database.GraphDatabase` interface (see
:mod:`repro.shard.store`), :mod:`repro.shard.placement` supplies the
pluggable placement policies, and :class:`ShardedBackend` (registered as
``"sharded"``) executes queries as per-shard pruning cascades with
cross-shard bound sharing and merge consumers
(:mod:`repro.engine.scatter`). Open one with::

    import repro

    with repro.connect(graphs, backend="sharded", shards=4) as session:
        result = session.execute(repro.Query(q).skyline())
        print(result.explain())   # includes the per-shard breakdown
"""

from repro.shard.placement import (
    HashPlacement,
    Placement,
    SizeBalancedPlacement,
    available_placements,
    get_placement,
    register_placement,
)
from repro.shard.store import ShardedGraphDatabase
from repro.shard.backend import ShardedBackend

__all__ = [
    "HashPlacement",
    "Placement",
    "SizeBalancedPlacement",
    "available_placements",
    "get_placement",
    "register_placement",
    "ShardedGraphDatabase",
    "ShardedBackend",
]
