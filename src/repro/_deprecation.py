"""Once-per-process deprecation warnings for the legacy entry points.

The deprecated shims (:class:`~repro.core.pipeline.SimilarityQueryEngine`,
:class:`~repro.db.executor.SkylineExecutor`) are still exercised by every
legacy caller and by the reproduction benches, so warning on every
construction would flood interactive sessions. Each shim warns exactly
once per process; tests reset :data:`_WARNED` to assert the warning.
"""

from __future__ import annotations

import warnings

_WARNED: set[str] = set()


def warn_deprecated_once(key: str, message: str) -> None:
    """Emit ``DeprecationWarning`` for ``key`` the first time it is seen."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)
